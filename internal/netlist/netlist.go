// Package netlist models gate-level sequential circuits in the style of
// the ISCAS89 benchmarks: primary inputs and outputs, D flip-flops, and a
// combinational network of logic gates.
//
// The package is deliberately index-based: nets and gates are identified
// by dense integer IDs so that simulators, timing analyzers and power
// estimators can keep their per-element state in flat slices.
//
// Full-scan view. Every DFF is assumed to be a scan cell. The Q output of
// a flip-flop is a pseudo-input of the combinational core and its D input
// is a pseudo-output. All algorithms in this repository operate on that
// combinational core: the set of controlled inputs of the paper is
// (primary inputs) ∪ (pseudo-inputs that received a scan-mode multiplexer).
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// NetID identifies a net (a named signal line) within one Circuit.
type NetID int32

// GateID identifies a combinational gate within one Circuit.
type GateID int32

// InvalidNet is the zero-information NetID.
const InvalidNet NetID = -1

// InvalidGate is the zero-information GateID.
const InvalidGate GateID = -1

// Net is a single signal line. A net is driven by exactly one of: a
// primary input, a flip-flop Q output, or a gate output.
type Net struct {
	Name   string
	Driver GateID // driving gate, or InvalidGate for PIs and flop outputs
	Fanout []GateID
	// FanoutFF lists the flip-flops whose D input reads this net.
	FanoutFF []int
	isPI     bool
	isPPI    bool // flip-flop Q output (pseudo-input)
	isPO     bool
}

// IsPI reports whether the net is a primary input.
func (n *Net) IsPI() bool { return n.isPI }

// IsPPI reports whether the net is a flip-flop output (pseudo-input).
func (n *Net) IsPPI() bool { return n.isPPI }

// IsPO reports whether the net is a primary output.
func (n *Net) IsPO() bool { return n.isPO }

// Gate is one combinational gate instance.
type Gate struct {
	Type   logic.GateType
	Inputs []NetID
	Output NetID
}

// FF is one D flip-flop (scan cell in full-scan designs).
type FF struct {
	Name string
	D    NetID // data input (pseudo-output of the combinational core)
	Q    NetID // output (pseudo-input of the combinational core)
}

// Circuit is a mutable gate-level design. Build it with the Add* methods,
// then call Freeze before handing it to analyses; Freeze computes fanout
// lists and the topological order and validates structural sanity.
type Circuit struct {
	Name  string
	Nets  []Net
	Gates []Gate
	PIs   []NetID
	POs   []NetID
	FFs   []FF

	netByName map[string]NetID
	topo      []GateID // combinational topological order, set by Freeze
	level     []int32  // per-gate logic level, set by Freeze
	frozen    bool
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, netByName: make(map[string]NetID)}
}

// NumNets returns the number of nets.
func (c *Circuit) NumNets() int { return len(c.Nets) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumFFs returns the number of flip-flops.
func (c *Circuit) NumFFs() int { return len(c.FFs) }

// NetByName returns the NetID for name.
func (c *Circuit) NetByName(name string) (NetID, bool) {
	id, ok := c.netByName[name]
	return id, ok
}

// ensureNet returns the existing net named name or creates one.
func (c *Circuit) ensureNet(name string) NetID {
	if id, ok := c.netByName[name]; ok {
		return id
	}
	id := NetID(len(c.Nets))
	c.Nets = append(c.Nets, Net{Name: name, Driver: InvalidGate})
	c.netByName[name] = id
	return id
}

// AddNet declares (or returns) the net named name.
func (c *Circuit) AddNet(name string) NetID {
	c.mutating()
	return c.ensureNet(name)
}

// AddPI declares net name as a primary input and returns its ID.
func (c *Circuit) AddPI(name string) NetID {
	c.mutating()
	id := c.ensureNet(name)
	if !c.Nets[id].isPI {
		c.Nets[id].isPI = true
		c.PIs = append(c.PIs, id)
	}
	return id
}

// MarkPO flags an existing or new net as a primary output.
func (c *Circuit) MarkPO(name string) NetID {
	c.mutating()
	id := c.ensureNet(name)
	if !c.Nets[id].isPO {
		c.Nets[id].isPO = true
		c.POs = append(c.POs, id)
	}
	return id
}

// AddGate adds a gate of type t driving output out from the given inputs,
// all referred to by net name, and returns its GateID.
func (c *Circuit) AddGate(t logic.GateType, out string, inputs ...string) GateID {
	c.mutating()
	ins := make([]NetID, len(inputs))
	for i, n := range inputs {
		ins[i] = c.ensureNet(n)
	}
	o := c.ensureNet(out)
	return c.AddGateNets(t, o, ins...)
}

// AddGateNets is AddGate with pre-resolved net IDs.
func (c *Circuit) AddGateNets(t logic.GateType, out NetID, inputs ...NetID) GateID {
	c.mutating()
	g := GateID(len(c.Gates))
	c.Gates = append(c.Gates, Gate{Type: t, Inputs: inputs, Output: out})
	c.Nets[out].Driver = g
	return g
}

// AddFF adds a D flip-flop named name reading net d and driving net q.
func (c *Circuit) AddFF(name, q, d string) int {
	c.mutating()
	qid := c.ensureNet(q)
	did := c.ensureNet(d)
	c.Nets[qid].isPPI = true
	c.FFs = append(c.FFs, FF{Name: name, D: did, Q: qid})
	return len(c.FFs) - 1
}

func (c *Circuit) mutating() {
	if c.frozen {
		c.frozen = false
		c.topo = nil
		c.level = nil
		for i := range c.Nets {
			c.Nets[i].Fanout = nil
			c.Nets[i].FanoutFF = nil
		}
	}
}

// Frozen reports whether Freeze has been called since the last mutation.
func (c *Circuit) Frozen() bool { return c.frozen }

// Freeze validates the circuit, computes fanout lists, the combinational
// topological order and per-gate levels. It must be called before any
// analysis. Calling it twice is a no-op.
func (c *Circuit) Freeze() error {
	if c.frozen {
		return nil
	}
	// Fanout lists.
	for gi := range c.Gates {
		g := &c.Gates[gi]
		if len(g.Inputs) == 0 {
			return fmt.Errorf("netlist %s: gate %d (%v->%s) has no inputs",
				c.Name, gi, g.Type, c.Nets[g.Output].Name)
		}
		switch g.Type {
		case logic.Not, logic.Buf:
			if len(g.Inputs) != 1 {
				return fmt.Errorf("netlist %s: %v gate %d has %d inputs",
					c.Name, g.Type, gi, len(g.Inputs))
			}
		case logic.Mux2:
			if len(g.Inputs) != 3 {
				return fmt.Errorf("netlist %s: MUX2 gate %d has %d inputs",
					c.Name, gi, len(g.Inputs))
			}
		default:
			if len(g.Inputs) < 2 {
				return fmt.Errorf("netlist %s: %v gate %d has %d inputs",
					c.Name, g.Type, gi, len(g.Inputs))
			}
		}
		for _, in := range g.Inputs {
			c.Nets[in].Fanout = append(c.Nets[in].Fanout, GateID(gi))
		}
	}
	for fi, ff := range c.FFs {
		c.Nets[ff.D].FanoutFF = append(c.Nets[ff.D].FanoutFF, fi)
	}
	// Every net needs a source.
	for ni := range c.Nets {
		n := &c.Nets[ni]
		if n.Driver == InvalidGate && !n.isPI && !n.isPPI {
			return fmt.Errorf("netlist %s: net %q is undriven", c.Name, n.Name)
		}
		if n.Driver != InvalidGate && (n.isPI || n.isPPI) {
			return fmt.Errorf("netlist %s: net %q is both gate-driven and an input",
				c.Name, n.Name)
		}
	}
	// Kahn topological sort over combinational gates.
	indeg := make([]int32, len(c.Gates))
	for gi := range c.Gates {
		for _, in := range c.Gates[gi].Inputs {
			if c.Nets[in].Driver != InvalidGate {
				indeg[gi]++
			}
		}
	}
	queue := make([]GateID, 0, len(c.Gates))
	for gi := range c.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
		}
	}
	c.topo = make([]GateID, 0, len(c.Gates))
	c.level = make([]int32, len(c.Gates))
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		c.topo = append(c.topo, g)
		lvl := int32(0)
		for _, in := range c.Gates[g].Inputs {
			if d := c.Nets[in].Driver; d != InvalidGate && c.level[d]+1 > lvl {
				lvl = c.level[d] + 1
			}
		}
		c.level[g] = lvl
		for _, succ := range c.Nets[c.Gates[g].Output].Fanout {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(c.topo) != len(c.Gates) {
		return fmt.Errorf("netlist %s: combinational cycle detected (%d of %d gates ordered)",
			c.Name, len(c.topo), len(c.Gates))
	}
	c.frozen = true
	return nil
}

// MustFreeze is Freeze that panics on error; for tests and generators that
// construct circuits known to be well formed.
func (c *Circuit) MustFreeze() {
	if err := c.Freeze(); err != nil {
		panic(err)
	}
}

// Topo returns the combinational gates in topological order. The slice is
// shared; callers must not modify it.
func (c *Circuit) Topo() []GateID {
	c.needFrozen()
	return c.topo
}

// Level returns the logic level (longest gate-count distance from any
// circuit input) of gate g.
func (c *Circuit) Level(g GateID) int {
	c.needFrozen()
	return int(c.level[g])
}

// Depth returns the maximum logic level plus one, i.e. the number of gate
// levels on the longest combinational path. Zero for gate-free circuits.
func (c *Circuit) Depth() int {
	c.needFrozen()
	d := 0
	for _, l := range c.level {
		if int(l)+1 > d {
			d = int(l) + 1
		}
	}
	return d
}

func (c *Circuit) needFrozen() {
	if !c.frozen {
		panic("netlist: circuit used before Freeze (call Freeze after building)")
	}
}

// PseudoInputs returns the flip-flop output nets in flop order.
func (c *Circuit) PseudoInputs() []NetID {
	out := make([]NetID, len(c.FFs))
	for i, ff := range c.FFs {
		out[i] = ff.Q
	}
	return out
}

// PseudoOutputs returns the flip-flop data-input nets in flop order.
func (c *Circuit) PseudoOutputs() []NetID {
	out := make([]NetID, len(c.FFs))
	for i, ff := range c.FFs {
		out[i] = ff.D
	}
	return out
}

// CombInputs returns all combinational-core input nets: primary inputs
// followed by pseudo-inputs.
func (c *Circuit) CombInputs() []NetID {
	out := make([]NetID, 0, len(c.PIs)+len(c.FFs))
	out = append(out, c.PIs...)
	out = append(out, c.PseudoInputs()...)
	return out
}

// Clone returns a deep, unfrozen copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := New(c.Name)
	cp.Nets = make([]Net, len(c.Nets))
	for i, n := range c.Nets {
		cp.Nets[i] = Net{Name: n.Name, Driver: n.Driver,
			isPI: n.isPI, isPPI: n.isPPI, isPO: n.isPO}
		cp.netByName[n.Name] = NetID(i)
	}
	cp.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		ins := make([]NetID, len(g.Inputs))
		copy(ins, g.Inputs)
		cp.Gates[i] = Gate{Type: g.Type, Inputs: ins, Output: g.Output}
	}
	cp.PIs = append([]NetID(nil), c.PIs...)
	cp.POs = append([]NetID(nil), c.POs...)
	cp.FFs = append([]FF(nil), c.FFs...)
	return cp
}

// Stats summarizes a circuit for reports and generators.
type Stats struct {
	Name    string
	PIs     int
	POs     int
	FFs     int
	Gates   int
	Nets    int
	Depth   int
	ByType  map[logic.GateType]int
	Fanout  float64 // mean gate fanout
	MaxFan  int
	MaxArit int
}

// ComputeStats gathers statistics; the circuit must be frozen.
func (c *Circuit) ComputeStats() Stats {
	c.needFrozen()
	s := Stats{
		Name: c.Name, PIs: len(c.PIs), POs: len(c.POs), FFs: len(c.FFs),
		Gates: len(c.Gates), Nets: len(c.Nets), Depth: c.Depth(),
		ByType: make(map[logic.GateType]int),
	}
	totalFan := 0
	for _, g := range c.Gates {
		s.ByType[g.Type]++
		if len(g.Inputs) > s.MaxArit {
			s.MaxArit = len(g.Inputs)
		}
		fan := len(c.Nets[g.Output].Fanout) + len(c.Nets[g.Output].FanoutFF)
		totalFan += fan
		if fan > s.MaxFan {
			s.MaxFan = fan
		}
	}
	if len(c.Gates) > 0 {
		s.Fanout = float64(totalFan) / float64(len(c.Gates))
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d FF, %d gates, depth %d",
		s.Name, s.PIs, s.POs, s.FFs, s.Gates, s.Depth)
}

// SortedNetNames returns all net names in sorted order (stable output for
// writers and tests).
func (c *Circuit) SortedNetNames() []string {
	names := make([]string, len(c.Nets))
	for i, n := range c.Nets {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
