package netlist

import "hash/fnv"

// Fingerprint returns a structural hash of the frozen circuit: the name,
// the PI/PO/FF boundary, and every gate's type and connectivity. Two
// circuits built the same way (for example, two Generate runs of the same
// ISCAS89 profile) share a fingerprint, so it can key caches of derived
// artifacts such as ATPG pattern sets. Frozen circuits are immutable, so
// the value never goes stale.
func (c *Circuit) Fingerprint() uint64 {
	c.needFrozen()
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	put := func(vs ...int) {
		buf = buf[:0]
		for _, v := range vs {
			u := uint64(v)
			buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		h.Write(buf)
	}
	h.Write([]byte(c.Name))
	put(len(c.Nets), len(c.Gates), len(c.PIs), len(c.POs), len(c.FFs))
	for _, n := range c.PIs {
		put(int(n))
	}
	for _, n := range c.POs {
		put(int(n))
	}
	for _, ff := range c.FFs {
		put(int(ff.Q), int(ff.D))
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		put(int(g.Type), int(g.Output), len(g.Inputs))
		for _, in := range g.Inputs {
			put(int(in))
		}
	}
	return h.Sum64()
}
