// Package vectors reads and writes scan test-pattern sets in a simple,
// diffable text format, so ATPG runs and power measurements can be
// decoupled (generate once with cmd/atpggen, replay anywhere):
//
//	# scanpower patterns v1
//	# circuit s344 pis 9 ffs 15
//	010010110 101011100100011
//	...
//
// Each line is the primary-input bits followed by the scan state bits in
// flop order.
package vectors

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/netlist"
	"repro/internal/scan"
)

// Set is a pattern file's contents.
type Set struct {
	Circuit  string
	NPI, NFF int
	Patterns []scan.Pattern
}

// Write emits the set.
func Write(w io.Writer, s Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# scanpower patterns v1")
	fmt.Fprintf(bw, "# circuit %s pis %d ffs %d\n", s.Circuit, s.NPI, s.NFF)
	for i, p := range s.Patterns {
		if len(p.PI) != s.NPI || len(p.State) != s.NFF {
			return fmt.Errorf("vectors: pattern %d sized %d/%d, want %d/%d",
				i, len(p.PI), len(p.State), s.NPI, s.NFF)
		}
		fmt.Fprintf(bw, "%s %s\n", bits(p.PI), bits(p.State))
	}
	return bw.Flush()
}

func bits(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		b[i] = '0'
		if x {
			b[i] = '1'
		}
	}
	return string(b)
}

// Read parses a pattern file.
func Read(r io.Reader) (Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var s Set
	headerSeen := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# circuit ") {
				if _, err := fmt.Sscanf(line, "# circuit %s pis %d ffs %d",
					&s.Circuit, &s.NPI, &s.NFF); err != nil {
					return Set{}, fmt.Errorf("vectors: line %d: bad header: %w", lineNo, err)
				}
				headerSeen = true
			}
			continue
		}
		if !headerSeen {
			return Set{}, fmt.Errorf("vectors: line %d: pattern before '# circuit' header", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Set{}, fmt.Errorf("vectors: line %d: want 'PIBITS STATEBITS', got %q", lineNo, line)
		}
		pi, err := parseBits(fields[0], s.NPI)
		if err != nil {
			return Set{}, fmt.Errorf("vectors: line %d: PI bits: %w", lineNo, err)
		}
		st, err := parseBits(fields[1], s.NFF)
		if err != nil {
			return Set{}, fmt.Errorf("vectors: line %d: state bits: %w", lineNo, err)
		}
		s.Patterns = append(s.Patterns, scan.Pattern{PI: pi, State: st})
	}
	if err := sc.Err(); err != nil {
		return Set{}, fmt.Errorf("vectors: read: %w", err)
	}
	if !headerSeen {
		return Set{}, fmt.Errorf("vectors: missing '# circuit' header")
	}
	return s, nil
}

func parseBits(s string, want int) ([]bool, error) {
	if len(s) != want {
		return nil, fmt.Errorf("got %d bits, want %d", len(s), want)
	}
	out := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("bad bit %q at position %d", s[i], i)
		}
	}
	return out, nil
}

// Validate checks the set against a circuit's interface.
func (s Set) Validate(c *netlist.Circuit) error {
	if s.NPI != len(c.PIs) || s.NFF != c.NumFFs() {
		return fmt.Errorf("vectors: set for %d PIs / %d flops, circuit %s has %d / %d",
			s.NPI, s.NFF, c.Name, len(c.PIs), c.NumFFs())
	}
	return nil
}
