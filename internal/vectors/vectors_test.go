package vectors

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

func sampleSet() Set {
	return Set{
		Circuit: "s27",
		NPI:     4,
		NFF:     3,
		Patterns: []scan.Pattern{
			{PI: []bool{true, false, true, false}, State: []bool{true, true, false}},
			{PI: []bool{false, false, false, false}, State: []bool{false, false, false}},
			{PI: []bool{true, true, true, true}, State: []bool{true, false, true}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSet()
	var sb strings.Builder
	if err := Write(&sb, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, sb.String())
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip changed set:\n%+v\nvs\n%+v", s, got)
	}
}

func TestWriteRejectsWrongSizes(t *testing.T) {
	s := sampleSet()
	s.Patterns[1].PI = s.Patterns[1].PI[:2]
	var sb strings.Builder
	if err := Write(&sb, s); err == nil {
		t.Error("accepted short PI vector")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "0101 110\n"},
		{"bad header", "# circuit oops\n"},
		{"bad bit", "# circuit x pis 2 ffs 1\n0a 1\n"},
		{"wrong width", "# circuit x pis 2 ffs 1\n010 1\n"},
		{"one field", "# circuit x pis 2 ffs 1\n01\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.src)); err == nil {
				t.Errorf("accepted %q", c.src)
			}
		})
	}
}

func TestReadSkipsBlanksAndComments(t *testing.T) {
	src := `
# scanpower patterns v1
# circuit x pis 1 ffs 1

# a comment
1 0

0 1
`
	s, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns) != 2 {
		t.Errorf("got %d patterns, want 2", len(s.Patterns))
	}
}

func TestValidate(t *testing.T) {
	c := netlist.New("v")
	c.AddPI("a")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Not, "d", "q")
	c.AddGate(logic.Nand, "o", "a", "q")
	c.MarkPO("o")
	c.MustFreeze()
	ok := Set{Circuit: "v", NPI: 1, NFF: 1}
	if err := ok.Validate(c); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := Set{Circuit: "v", NPI: 2, NFF: 1}
	if err := bad.Validate(c); err == nil {
		t.Error("mismatched set accepted")
	}
}
