package bench

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// s27 is the real ISCAS89 s27 benchmark.
const s27 = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func TestParseS27(t *testing.T) {
	c, err := ParseString(s27, "s27")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := c.ComputeStats()
	if st.PIs != 4 || st.POs != 1 || st.FFs != 3 || st.Gates != 10 {
		t.Fatalf("s27 stats wrong: %v", st)
	}
	if st.ByType[logic.Nor] != 4 || st.ByType[logic.Not] != 2 ||
		st.ByType[logic.And] != 1 || st.ByType[logic.Or] != 2 ||
		st.ByType[logic.Nand] != 1 {
		t.Errorf("gate type histogram wrong: %v", st.ByType)
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(s27, "s27")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c2, err := ParseString(sb.String(), "s27rt")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if Canonical(c) != Canonical(c2) {
		t.Errorf("round trip changed circuit:\n%s\nvs\n%s", Canonical(c), Canonical(c2))
	}
}

func TestParseCaseInsensitiveAndSpacing(t *testing.T) {
	src := `
input( a )
INPUT(b)
output(o)
o = nand( a , b )
`
	c, err := ParseString(src, "ci")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.NumGates() != 1 || c.Gates[0].Type != logic.Nand {
		t.Fatalf("parsed wrong gate: %+v", c.Gates)
	}
}

func TestParseMUX2RoundTrip(t *testing.T) {
	src := `INPUT(d0)
INPUT(d1)
INPUT(se)
OUTPUT(y)
y = MUX2(d0, d1, se)
`
	c, err := ParseString(src, "mux")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(sb.String(), "MUX2(d0, d1, se)") {
		t.Errorf("MUX2 not written positionally:\n%s", sb.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"garbage", "INPUT(a)\nnot an assignment\n", "assignment"},
		{"unknown gate", "INPUT(a)\nb = FROB(a)\n", "unknown gate type"},
		{"empty input", "INPUT()\n", "empty signal"},
		{"dff arity", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n", "exactly one"},
		{"empty operand", "INPUT(a)\nb = NAND(a, )\n", "empty operand"},
		{"malformed expr", "INPUT(a)\nb = NAND a\n", "malformed"},
		{"empty output", "INPUT(a)\n = NAND(a, a)\n", "empty output"},
		{"undriven", "INPUT(a)\nOUTPUT(z)\nb = NAND(a, z)\n", "undriven"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src, c.name)
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestParseErrorLineNumber(t *testing.T) {
	_, err := ParseString("INPUT(a)\n\n# c\nb = FROB(a)\n", "ln")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func TestCanonicalOrderIndependence(t *testing.T) {
	a := `INPUT(x)
INPUT(y)
OUTPUT(o)
o = NAND(x, y)
`
	b := `INPUT(y)
INPUT(x)
OUTPUT(o)
o = NAND(y, x)
`
	ca, err := ParseString(a, "a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ParseString(b, "b")
	if err != nil {
		t.Fatal(err)
	}
	if Canonical(ca) != Canonical(cb) {
		t.Errorf("canonical forms differ:\n%s\nvs\n%s", Canonical(ca), Canonical(cb))
	}
}

func TestWriteHeaderCounts(t *testing.T) {
	c, err := ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4 inputs, 1 outputs, 3 D-type flipflops, 10 gates") {
		t.Errorf("header counts missing:\n%s", sb.String())
	}
}
