package bench

import (
	"strings"
	"testing"
)

// FuzzParse drives the .bench parser with arbitrary input: it must never
// panic, and anything it accepts must be a frozen, internally consistent
// circuit that survives a write/reparse round trip.
//
// The seed corpus runs as part of `go test`; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# empty\n",
		"INPUT(a)\n",
		"INPUT(a)\nOUTPUT(o)\no = NOT(a)\n",
		"INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NAND(a, b)\n",
		"INPUT(a)\nq = DFF(d)\nd = NOT(q)\n",
		"INPUT(a)\nOUTPUT(o)\no = MUX2(a, a, a)\n",
		"input(a)\noutput(o)\no = nor(a , a)\n",
		"INPUT(a)\nb = FROB(a)\n",
		"INPUT()\n",
		"o = \n",
		"= NAND(a)\n",
		"INPUT(a)\no = NAND(a,)\n",
		"INPUT(a)\nOUTPUT(o)\no = XOR(a, a)\nINPUT(a)\n",
		strings.Repeat("INPUT(x)\n", 50),
		"INPUT(a)\nx = NAND(a, y)\ny = NAND(a, x)\n",
		"INPUT(a)\r\nOUTPUT(o)\r\no = NOT(a)\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !c.Frozen() {
			t.Fatal("accepted circuit is not frozen")
		}
		// Accepted circuits must round-trip.
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			t.Fatalf("write accepted circuit: %v", err)
		}
		c2, err := ParseString(sb.String(), "fuzz2")
		if err != nil {
			t.Fatalf("reparse of written circuit failed: %v\n%s", err, sb.String())
		}
		if Canonical(c) != Canonical(c2) {
			t.Fatalf("round trip changed circuit:\n%s\n---\n%s", Canonical(c), Canonical(c2))
		}
	})
}
