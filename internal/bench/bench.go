// Package bench reads and writes the ISCAS89 ".bench" netlist format used
// to distribute the s-series benchmark circuits:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G8 = NAND(G14, G6)
//	G14 = NOT(G0)
//
// Flip-flop lines (DFF) become netlist.FF entries; every other assignment
// becomes a combinational gate. Gate type names are case-insensitive.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ParseError describes a syntax error with its 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

// Parse reads a .bench description and returns the frozen circuit.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	c := netlist.New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	ffCount := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			arg, err := directiveArg(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			c.AddPI(arg)
		case matchDirective(line, "OUTPUT"):
			arg, err := directiveArg(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			c.MarkPO(arg)
		default:
			if err := parseAssign(c, line, lineNo, &ffCount); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}
	if err := c.Freeze(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return c, nil
}

func matchDirective(line, dir string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, dir+"(") || strings.HasPrefix(u, dir+" (")
}

func directiveArg(line, dir string, lineNo int) (string, error) {
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return "", &ParseError{lineNo, fmt.Sprintf("malformed %s directive %q", dir, line)}
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", &ParseError{lineNo, dir + " with empty signal name"}
	}
	return arg, nil
}

func parseAssign(c *netlist.Circuit, line string, lineNo int, ffCount *int) error {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return &ParseError{lineNo, fmt.Sprintf("expected assignment, got %q", line)}
	}
	out := strings.TrimSpace(line[:eq])
	if out == "" {
		return &ParseError{lineNo, "assignment with empty output name"}
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close_ := strings.LastIndexByte(rhs, ')')
	if open <= 0 || close_ < open {
		return &ParseError{lineNo, fmt.Sprintf("malformed gate expression %q", rhs)}
	}
	typeName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	argstr := rhs[open+1 : close_]
	var args []string
	for _, a := range strings.Split(argstr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return &ParseError{lineNo, fmt.Sprintf("empty operand in %q", line)}
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		return &ParseError{lineNo, fmt.Sprintf("gate %q has no operands", out)}
	}
	if typeName == "DFF" {
		if len(args) != 1 {
			return &ParseError{lineNo, fmt.Sprintf("DFF %q must have exactly one input", out)}
		}
		*ffCount++
		c.AddFF(fmt.Sprintf("ff%d_%s", *ffCount, out), out, args[0])
		return nil
	}
	gt, ok := logic.ParseGateType(typeName)
	if !ok {
		return &ParseError{lineNo, fmt.Sprintf("unknown gate type %q", typeName)}
	}
	c.AddGate(gt, out, args...)
	return nil
}

// Write emits the circuit in .bench syntax. Gates are emitted in
// topological order (the circuit must be frozen); MUX2 gates — which have
// no ISCAS89 spelling — are emitted as MUX2(d0, d1, sel) and are accepted
// back by Parse.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.ComputeStats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		st.PIs, st.POs, st.FFs, st.Gates)
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nets[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nets[po].Name)
	}
	fmt.Fprintln(bw)
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.Nets[ff.Q].Name, c.Nets[ff.D].Name)
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		names := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			names[i] = c.Nets[in].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n",
			c.Nets[g.Output].Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// ParseString is Parse over an in-memory string.
func ParseString(src, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(src), name)
}

// Canonical renders the circuit to a normalized string in which inputs,
// outputs, flops and gates appear in name order — useful for equality
// checks in tests independent of construction order.
func Canonical(c *netlist.Circuit) string {
	var lines []string
	for _, pi := range c.PIs {
		lines = append(lines, "INPUT("+c.Nets[pi].Name+")")
	}
	for _, po := range c.POs {
		lines = append(lines, "OUTPUT("+c.Nets[po].Name+")")
	}
	for _, ff := range c.FFs {
		lines = append(lines, c.Nets[ff.Q].Name+" = DFF("+c.Nets[ff.D].Name+")")
	}
	for _, g := range c.Gates {
		names := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			names[i] = c.Nets[in].Name
		}
		if g.Type != logic.Mux2 { // MUX inputs are positional
			sort.Strings(names)
		}
		lines = append(lines, c.Nets[g.Output].Name+" = "+g.Type.String()+
			"("+strings.Join(names, ", ")+")")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
