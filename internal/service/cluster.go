package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/api"
	"repro/internal/telemetry"
)

// ClusterSchemaV1 tags the GET /v1/cluster response document.
const ClusterSchemaV1 = "scanpower/cluster/v1"

// ForwardedHeader marks a submit that a peer already routed. The receiver
// always runs such a submit locally, so divergent ring views during a
// membership change can cost one extra hop but never a forwarding loop.
// The forwarded flag wins over any trace header: a request carrying both
// adopts the trace identity but never re-forwards.
const ForwardedHeader = "X-Scanpowerd-Forwarded"

// TraceHeader carries the distributed trace context across submits, as a
// traceparent-style value (see telemetry.TraceContext). A forwarding node
// stamps it so the receiver's job spans parent to the forwarder's span; a
// client may also set it to join server spans to its own trace.
const TraceHeader = "X-Scanpowerd-Trace"

const (
	// ringVnodes is the virtual-node count per member; enough that a
	// three-node ring splits the fingerprint space within a few percent
	// of evenly.
	ringVnodes = 64
	// downCooldown is how long a peer that failed a forward is skipped
	// before it is retried.
	downCooldown = 3 * time.Second
	// forwardBackoff seeds the between-replica backoff: the second
	// replica waits this long, the third twice that, and so on.
	forwardBackoff = 50 * time.Millisecond
	// probeTimeout bounds each peer health probe in /v1/cluster.
	probeTimeout = 2 * time.Second
)

// ringPoint is one virtual node's position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// ring is a consistent-hash ring over the cluster members. Each member
// contributes ringVnodes points; a fingerprint is owned by the first
// point at or after its hash, wrapping. Adding or removing one member
// moves only the keys adjacent to that member's points — the stability
// property the store depends on, since a key that changes owner goes
// cold on the new owner's disk.
type ring struct {
	points []ringPoint
	nodes  []string // distinct members, sorted
}

func newRing(members []string) *ring {
	seen := make(map[string]bool)
	var nodes []string
	for _, n := range members {
		if n != "" && !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Strings(nodes)
	r := &ring{nodes: nodes}
	for _, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			io.WriteString(h, n)
			io.WriteString(h, "#")
			io.WriteString(h, strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hashFingerprint re-mixes the structural fingerprint before the ring
// lookup so ring position does not inherit any bias in the fingerprint's
// own bit layout.
func hashFingerprint(fp uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fp)
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}

// route returns the distinct members in ring order starting at fp's
// owner: route(fp)[0] owns the key, the rest are its failover successors.
func (r *ring) route(fp uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	target := hashFingerprint(fp)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	seen := make(map[string]bool, len(r.nodes))
	out := make([]string, 0, len(r.nodes))
	for k := 0; k < len(r.points) && len(out) < len(r.nodes); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// owner returns the member that owns fp.
func (r *ring) owner(fp uint64) string {
	if rt := r.route(fp); len(rt) > 0 {
		return rt[0]
	}
	return ""
}

// cluster is the sharding and forwarding state of one member.
type cluster struct {
	self string
	ring *ring
	// hc carries forwarded submits. Deliberately no client timeout: a
	// wait-mode submit legitimately holds the connection for the job's
	// whole runtime, and the request context already propagates client
	// disconnects and deadlines.
	hc *http.Client

	mu        sync.Mutex
	downUntil map[string]time.Time

	forwarded *telemetry.Counter
	failovers *telemetry.Counter
}

func newCluster(self string, peers []string, reg *telemetry.Registry) *cluster {
	return &cluster{
		self:      self,
		ring:      newRing(append([]string{self}, peers...)),
		hc:        &http.Client{},
		downUntil: make(map[string]time.Time),
		forwarded: reg.Counter(MetricForwarded),
		failovers: reg.Counter(MetricForwardFailovers),
	}
}

// markDown records a failed forward so the peer is skipped until the
// cooldown lapses.
func (cl *cluster) markDown(node string) {
	cl.mu.Lock()
	cl.downUntil[node] = time.Now().Add(downCooldown)
	cl.mu.Unlock()
}

func (cl *cluster) isDown(node string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return time.Now().Before(cl.downUntil[node])
}

// forward ships one submit body to node, tagged so the receiver runs it
// locally and stamped with the trace context the receiver's spans should
// parent to.
func (cl *cluster) forward(ctx context.Context, node string, body []byte, traceparent string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	if traceparent != "" {
		req.Header.Set(TraceHeader, traceparent)
	}
	return cl.hc.Do(req)
}

// forwardSubmit routes a submit along the fingerprint's replica chain.
// It reports true when the response has been handled — relayed from the
// owning peer, or abandoned because the client disconnected — and false
// when this node should run the job locally: it is the live owner, or
// every replica ahead of it is down.
//
// Once a forward is attempted, this node contributes an "ingress" trace
// segment (with one "forward" child per attempt) to tc's trace — minting
// the trace ID here if the client supplied none — so the merged trace of
// a forwarded job shows the hop. Every exit path ends both spans, so a
// client disconnect mid-hop still leaves the segment balanced.
func (s *Service) forwardSubmit(w http.ResponseWriter, r *http.Request, fp uint64, req *submitRequest, tc *telemetry.TraceContext) bool {
	cl := s.cluster
	var body []byte
	var seg *telemetry.SpanBuilder
	var ingress *telemetry.BuildSpan
	ensureSpans := func() {
		if seg != nil {
			return
		}
		if tc.TraceID == "" {
			tc.TraceID = telemetry.NewTraceID()
		}
		seg = telemetry.NewSpanBuilder(tc.TraceID, s.node)
		ingress = seg.StartSpan(tc.SpanID, "ingress", map[string]any{
			"circuit": circuitLabel(req),
		})
		s.traces.Add(seg)
		s.traceSegments.Set(float64(s.traces.Len()))
	}
	finish := func(outcome string) {
		if ingress != nil && outcome == "local" {
			// Falling back to a local run after failed forward attempts:
			// parent the local job span under this ingress span so the
			// failovers show up on the path to the job.
			tc.SpanID = ingress.ID()
		}
		ingress.End(map[string]any{"outcome": outcome})
	}
	attempt := 0
	for _, node := range cl.ring.route(fp) {
		if node == cl.self {
			finish("local")
			return false
		}
		if cl.isDown(node) {
			continue
		}
		if body == nil {
			b, err := json.Marshal(req)
			if err != nil {
				finish("local")
				return false // degenerate; run locally
			}
			body = b
		}
		ensureSpans()
		if attempt > 0 {
			select {
			case <-time.After(forwardBackoff << (attempt - 1)):
			case <-r.Context().Done():
				finish("abandoned")
				return true // client gone; nothing left to write
			}
		}
		attempt++
		fwd := ingress.Start("forward", map[string]any{"peer": node})
		resp, err := cl.forward(r.Context(), node, body,
			telemetry.TraceContext{TraceID: tc.TraceID, SpanID: fwd.ID()}.Traceparent())
		if err != nil {
			fwd.End(map[string]any{"error": err.Error()})
			if r.Context().Err() != nil {
				finish("abandoned")
				return true
			}
			cl.markDown(node)
			cl.failovers.Inc()
			s.log.Warn("forward failed", "trace_id", tc.TraceID, "peer", node, "error", err)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining or not yet serving: the next replica (possibly this
			// node) takes the job instead of bouncing the client.
			resp.Body.Close()
			fwd.End(map[string]any{"status": resp.StatusCode})
			cl.markDown(node)
			cl.failovers.Inc()
			s.log.Warn("forward refused", "trace_id", tc.TraceID, "peer", node,
				"status", resp.StatusCode)
			continue
		}
		cl.forwarded.Inc()
		relayed := relayResponse(w, resp)
		jobID := relayedJobID(relayed)
		if jobID != "" {
			seg.SetJobID(jobID)
		}
		fwd.End(map[string]any{"status": resp.StatusCode, "job_id": jobID})
		finish("relayed")
		s.log.Info("job forwarded", "trace_id", tc.TraceID, "peer", node,
			"job_id", jobID, "status", resp.StatusCode)
		return true
	}
	finish("local")
	return false
}

// circuitLabel names the submit for span attributes: the built-in name
// (flat or union form), or the inline circuit's label.
func circuitLabel(req *submitRequest) string {
	kind, payload, name := req.Resolved()
	if kind == api.SourceCircuit {
		return payload
	}
	return name
}

// relayedJobID extracts the job ID from a relayed submit response body so
// the forwarding node's trace segment can be found by job as well as by
// trace. Non-job bodies (error envelopes) yield "".
func relayedJobID(body []byte) string {
	var jr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		return ""
	}
	return jr.ID
}

// relayResponse copies a forwarded response — status, the headers the
// API contract uses, and the body — onto the client connection, returning
// the relayed body bytes.
func relayResponse(w http.ResponseWriter, resp *http.Response) []byte {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	var buf bytes.Buffer
	io.Copy(w, io.TeeReader(resp.Body, &buf))
	return buf.Bytes()
}

// clusterNode is one member's row in the GET /v1/cluster response.
type clusterNode struct {
	Node       string `json:"node"`
	Self       bool   `json:"self,omitempty"`
	Healthy    bool   `json:"healthy"`
	Draining   bool   `json:"draining,omitempty"`
	Error      string `json:"error,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	Inflight   int    `json:"inflight,omitempty"`
	Jobs       int    `json:"jobs,omitempty"`
}

// storeStatus is the persistent store's block in cluster and healthz
// responses.
type storeStatus struct {
	Dir       string `json:"dir,omitempty"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Puts      int64  `json:"puts"`
	Evictions int64  `json:"evictions"`
	Corrupt   int64  `json:"corrupt"`
}

// clusterResponse is the GET /v1/cluster body.
type clusterResponse struct {
	Schema string        `json:"schema"`
	Self   string        `json:"self,omitempty"`
	Nodes  []clusterNode `json:"nodes"`
	Store  *storeStatus  `json:"store,omitempty"`
}

// probeClient health-checks peers for /v1/cluster; short timeout so one
// dead peer cannot stall the whole status page.
var probeClient = &http.Client{Timeout: probeTimeout}

// probePeer asks one peer for its healthz view.
func probePeer(ctx context.Context, node string) clusterNode {
	out := clusterNode{Node: node}
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/healthz", nil)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	resp, err := probeClient.Do(req)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		out.Error = err.Error()
		return out
	}
	out.Healthy = true
	out.Draining = hz.Status == "draining"
	out.QueueDepth = hz.QueueDepth
	out.Inflight = hz.Inflight
	out.Jobs = hz.Jobs
	return out
}

// handleCluster serves GET /v1/cluster: this node's view of the
// membership (self plus concurrently health-probed peers) and its
// persistent store. Single-node deployments get a one-row membership.
func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	selfName := s.opts.Self
	if selfName == "" {
		selfName = "local"
	}
	resp := clusterResponse{
		Schema: ClusterSchemaV1,
		Self:   s.opts.Self,
		Nodes: []clusterNode{{
			Node:       selfName,
			Self:       true,
			Healthy:    true,
			Draining:   st.Draining,
			QueueDepth: st.QueueDepth,
			Inflight:   st.Inflight,
			Jobs:       st.Jobs,
		}},
	}
	if s.cluster != nil {
		var peers []string
		for _, node := range s.cluster.ring.nodes {
			if node != s.cluster.self {
				peers = append(peers, node)
			}
		}
		rows := make([]clusterNode, len(peers))
		var wg sync.WaitGroup
		for i, node := range peers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows[i] = probePeer(r.Context(), node)
			}()
		}
		wg.Wait()
		resp.Nodes = append(resp.Nodes, rows...)
	}
	if s.store != nil {
		resp.Store = &storeStatus{
			Dir:       s.store.Dir(),
			Entries:   st.Store.Entries,
			Bytes:     st.Store.Bytes,
			Hits:      st.Store.Hits,
			Misses:    st.Store.Misses,
			Puts:      st.Store.Puts,
			Evictions: st.Store.Evictions,
			Corrupt:   st.Store.Corrupt,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
