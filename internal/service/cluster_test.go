package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/netlist"
	"repro/internal/store"
	"repro/internal/techmap"
	"repro/internal/telemetry"
)

// benchCircuit resolves an inline bench exactly like the submit handler
// does, so its fingerprint matches the one the service shards on.
func benchCircuit(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	c, err := scanpower.ParseBench(s27Bench, name)
	if err != nil {
		t.Fatal(err)
	}
	if !techmap.IsMapped(c, 4) {
		if c, err = scanpower.Prepare(c); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestRingStability checks the consistent-hash property the store
// depends on: membership changes only move the keys adjacent to the
// changed member.
func TestRingStability(t *testing.T) {
	three := []string{"http://a:1", "http://b:1", "http://c:1"}
	r3 := newRing(three)
	r4 := newRing(append(three, "http://d:1"))

	const keys = 4096
	owners3 := make([]string, keys)
	counts := map[string]int{}
	for fp := 0; fp < keys; fp++ {
		owners3[fp] = r3.owner(uint64(fp))
		counts[owners3[fp]]++
	}
	// Rough balance: each of three members owns a meaningful share.
	for _, n := range three {
		if counts[n] < keys/10 {
			t.Errorf("member %s owns only %d/%d keys", n, counts[n], keys)
		}
	}

	// Adding a member moves keys only onto the new member, roughly its
	// fair share of the space.
	moved := 0
	for fp := 0; fp < keys; fp++ {
		o := r4.owner(uint64(fp))
		if o != owners3[fp] {
			moved++
			if o != "http://d:1" {
				t.Fatalf("key %d moved %s -> %s, not to the added member", fp, owners3[fp], o)
			}
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("adding one member to three moved %d/%d keys", moved, keys)
	}

	// Removing a member moves only that member's keys.
	r2 := newRing([]string{"http://a:1", "http://b:1"})
	for fp := 0; fp < keys; fp++ {
		o := r2.owner(uint64(fp))
		if owners3[fp] != "http://c:1" && o != owners3[fp] {
			t.Fatalf("key %d owned by %s moved to %s when c left", fp, owners3[fp], o)
		}
	}

	// Failover chains visit every member exactly once, owner first.
	rt := r3.route(12345)
	if len(rt) != 3 || rt[0] != r3.owner(12345) {
		t.Fatalf("route = %v, owner = %s", rt, r3.owner(12345))
	}
	seen := map[string]bool{}
	for _, n := range rt {
		if seen[n] {
			t.Fatalf("route %v repeats %s", rt, n)
		}
		seen[n] = true
	}
}

// countingRunner records how many jobs this node actually executed.
type countingRunner struct {
	mu   sync.Mutex
	runs []string
}

func (cr *countingRunner) runner() Runner {
	return func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error) {
		cr.mu.Lock()
		cr.runs = append(cr.runs, c.Name)
		cr.mu.Unlock()
		return &scanpower.Comparison{Circuit: c.Name}, nil
	}
}

func (cr *countingRunner) count() int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return len(cr.runs)
}

// newClusterNode boots a Service on a pre-bound listener so its Self URL
// was known before New ran.
func newClusterNode(t *testing.T, l net.Listener, opts Options) *Service {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	svc := New(opts)
	srv := httptest.NewUnstartedServer(svc.Handler())
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc
}

func listenURL(t *testing.T) (net.Listener, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l, "http://" + l.Addr().String()
}

// pickOwned returns an inline-bench name whose fingerprint the given
// member owns under the ring, so forwarding tests are deterministic.
func pickOwned(t *testing.T, r *ring, member string) string {
	t.Helper()
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("shard-probe-%d", i)
		if r.owner(benchCircuit(t, name).Fingerprint()) == member {
			return name
		}
	}
	t.Fatalf("no probe circuit owned by %s", member)
	return ""
}

// TestClusterForwarding drives a two-node cluster: a submit landing on
// the wrong node is forwarded to its owner, executes there, and the
// response names the owner so the client can follow up.
func TestClusterForwarding(t *testing.T) {
	lA, urlA := listenURL(t)
	lB, urlB := listenURL(t)
	regA := telemetry.NewRegistry()
	var runsA, runsB countingRunner
	newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{urlB},
		Registry: regA, Runner: runsA.runner(),
	})
	newClusterNode(t, lB, Options{
		Workers: 1, QueueSize: 8, Self: urlB, Peers: []string{urlA},
		Runner: runsB.runner(),
	})

	r := newRing([]string{urlA, urlB})
	nameLocal := pickOwned(t, r, urlA)
	nameRemote := pickOwned(t, r, urlB)

	// Owned here: runs here, response names this node.
	code, _, body := postJob(t, urlA, map[string]any{
		"bench": s27Bench, "name": nameLocal, "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("local submit: status %d (%v)", code, body)
	}
	if body["node"] != urlA {
		t.Errorf("local job node = %v, want %v", body["node"], urlA)
	}

	// Owned by the peer: forwarded, runs there, response names the peer.
	code, _, body = postJob(t, urlA, map[string]any{
		"bench": s27Bench, "name": nameRemote, "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("forwarded submit: status %d (%v)", code, body)
	}
	if body["node"] != urlB {
		t.Errorf("forwarded job node = %v, want %v", body["node"], urlB)
	}
	if runsA.count() != 1 || runsB.count() != 1 {
		t.Errorf("runs: A=%d B=%d, want 1 and 1 (%v / %v)",
			runsA.count(), runsB.count(), runsA.runs, runsB.runs)
	}
	if got := regA.Counter(MetricForwarded).Value(); got != 1 {
		t.Errorf("forwarded counter = %d, want 1", got)
	}

	// The job is pollable on the node the response named.
	id, _ := body["id"].(string)
	jcode, _, jbody := getJSON(t, urlB+"/v1/jobs/"+id)
	if jcode != http.StatusOK || jbody["state"] != "done" {
		t.Errorf("poll on owner: status %d (%v)", jcode, jbody)
	}

	// /v1/cluster from A sees both members, the peer healthy.
	ccode, _, cbody := getJSON(t, urlA+"/v1/cluster")
	if ccode != http.StatusOK || cbody["schema"] != ClusterSchemaV1 || cbody["self"] != urlA {
		t.Fatalf("cluster status: %d (%v)", ccode, cbody)
	}
	nodes, _ := cbody["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("cluster reports %d nodes, want 2: %v", len(nodes), nodes)
	}
	for _, n := range nodes {
		row := n.(map[string]any)
		if row["healthy"] != true {
			t.Errorf("node %v not healthy: %v", row["node"], row)
		}
	}
}

// TestClusterFailover checks a submit owned by a dead peer fails over:
// the next ring replica (this node) runs it instead of bouncing the
// client.
func TestClusterFailover(t *testing.T) {
	// A bound-then-closed listener gives a port that refuses connections.
	dead, deadURL := listenURL(t)
	dead.Close()

	lA, urlA := listenURL(t)
	regA := telemetry.NewRegistry()
	var runsA countingRunner
	newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{deadURL},
		Registry: regA, Runner: runsA.runner(),
	})

	r := newRing([]string{urlA, deadURL})
	nameDead := pickOwned(t, r, deadURL)

	code, _, body := postJob(t, urlA, map[string]any{
		"bench": s27Bench, "name": nameDead, "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("failover submit: status %d (%v)", code, body)
	}
	if body["node"] != urlA {
		t.Errorf("failover job node = %v, want %v", body["node"], urlA)
	}
	if runsA.count() != 1 {
		t.Errorf("failover ran %d jobs locally, want 1", runsA.count())
	}
	if got := regA.Counter(MetricForwardFailovers).Value(); got < 1 {
		t.Errorf("failover counter = %d, want >= 1", got)
	}

	// The down-mark short-circuits the next submit for the same owner:
	// still served locally, still no client-visible error.
	code, _, body = postJob(t, urlA, map[string]any{
		"bench": s27Bench, "name": nameDead, "measure": "dense", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("second failover submit: status %d (%v)", code, body)
	}

	// /v1/cluster reports the peer unreachable.
	_, _, cbody := getJSON(t, urlA+"/v1/cluster")
	for _, n := range cbody["nodes"].([]any) {
		row := n.(map[string]any)
		if row["node"] == deadURL && row["healthy"] == true {
			t.Errorf("dead peer reported healthy: %v", row)
		}
	}
}

// TestServiceStoreWarmRestart is the service-level warm-start contract:
// a restarted daemon serves a previously computed job from disk with
// bit-identical result bytes and no recompute.
func TestServiceStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(dir, store.Options{WireSchema: scanpower.ComparisonSchemaV1})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	fetch := func(base, id string) []byte {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result: status %d: %s", resp.StatusCode, raw)
		}
		return raw
	}

	// First life: compute for real and persist.
	reg1 := telemetry.NewRegistry()
	svc1 := New(Options{Workers: 1, QueueSize: 4, Store: open(), Registry: reg1})
	srv1 := httptest.NewServer(svc1.Handler())
	code, _, body := postJob(t, srv1.URL, map[string]any{
		"bench": s27Bench, "name": "warm-s27", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("first-life submit: status %d (%v)", code, body)
	}
	firstBytes := fetch(srv1.URL, body["id"].(string))
	srv1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}
	if reg1.Counter(MetricStorePuts).Value() != 1 {
		t.Fatalf("store puts = %d, want 1", reg1.Counter(MetricStorePuts).Value())
	}

	// Second life: same directory, fresh process state. The submit is
	// done before a worker could have touched it, served from disk.
	reg2 := telemetry.NewRegistry()
	var runs countingRunner
	svc2 := New(Options{Workers: 1, QueueSize: 4, Store: open(), Registry: reg2, Runner: runs.runner()})
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	defer svc2.Close()

	code, _, body = postJob(t, srv2.URL, map[string]any{
		"bench": s27Bench, "name": "warm-s27", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("warm submit: status %d (%v)", code, body)
	}
	secondBytes := fetch(srv2.URL, body["id"].(string))
	if string(firstBytes) != string(secondBytes) {
		t.Errorf("warm result differs from original:\n%s\nvs\n%s", firstBytes, secondBytes)
	}
	if runs.count() != 0 {
		t.Errorf("warm hit ran %d jobs, want 0", runs.count())
	}
	if reg2.Counter(MetricStoreHits).Value() != 1 {
		t.Errorf("store hits = %d, want 1", reg2.Counter(MetricStoreHits).Value())
	}

	// Engine saw no ATPG work in the second life.
	hits, misses := svc2.Engine().CacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("warm hit touched the Engine cache: hits=%d misses=%d", hits, misses)
	}

	// A repeat of the warm submit coalesces onto the done job.
	code, _, repeat := postJob(t, srv2.URL, map[string]any{
		"bench": s27Bench, "name": "warm-s27", "wait": true,
	})
	if code != http.StatusOK || repeat["coalesced"] != true || repeat["id"] != body["id"] {
		t.Errorf("repeat after warm hit: status %d (%v)", code, repeat)
	}

	// healthz carries the store block.
	_, _, hz := getJSON(t, srv2.URL+"/v1/healthz")
	st, _ := hz["store"].(map[string]any)
	if st == nil || st["entries"].(float64) != 1 || st["hits"].(float64) != 1 {
		t.Errorf("healthz store block = %v", hz["store"])
	}
}

// TestServiceStoreCorruptionRecomputes: a bit-flipped entry is evicted,
// not served — the service recomputes and re-persists.
func TestServiceStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(dir, store.Options{WireSchema: scanpower.ComparisonSchemaV1})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	var runs countingRunner
	svc1 := New(Options{Workers: 1, QueueSize: 4, Store: open(), Runner: runs.runner()})
	srv1 := httptest.NewServer(svc1.Handler())
	code, _, body := postJob(t, srv1.URL, map[string]any{
		"bench": s27Bench, "name": "corrupt-s27", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	srv1.Close()
	svc1.Close()

	// Flip one byte inside the stored result payload.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries = %v (%v)", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(raw), `"result"`)
	if i < 0 {
		t.Fatalf("no result field in %s", raw)
	}
	raw[i+20] ^= 0x01
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	svc2 := New(Options{Workers: 1, QueueSize: 4, Store: open(), Registry: reg, Runner: runs.runner()})
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	defer svc2.Close()

	code, _, body = postJob(t, srv2.URL, map[string]any{
		"bench": s27Bench, "name": "corrupt-s27", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("resubmit: status %d (%v)", code, body)
	}
	if runs.count() != 2 {
		t.Errorf("corrupted entry served without recompute: %d runs, want 2", runs.count())
	}
	if reg.Counter(MetricStoreHits).Value() != 0 {
		t.Errorf("corrupted entry counted as a store hit")
	}
}

// TestSingleNodeClusterEndpoint: without peers the endpoint still
// answers with a one-row membership.
func TestSingleNodeClusterEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 1})
	code, _, body := getJSON(t, srv.URL+"/v1/cluster")
	if code != http.StatusOK || body["schema"] != ClusterSchemaV1 {
		t.Fatalf("cluster: status %d (%v)", code, body)
	}
	nodes, _ := body["nodes"].([]any)
	if len(nodes) != 1 {
		t.Fatalf("single node reports %d members: %v", len(nodes), nodes)
	}
	row := nodes[0].(map[string]any)
	if row["self"] != true || row["healthy"] != true {
		t.Errorf("self row = %v", row)
	}
}
