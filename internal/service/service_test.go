package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// s27 is the real ISCAS89 s27 benchmark — small enough that a full
// experiment runs in milliseconds, sequential enough (3 FFs) that the
// scan-power pipeline is non-degenerate. It uses AND/OR gates so the
// inline-bench path also exercises Prepare's library mapping.
const s27Bench = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// newTestServer boots a Service under httptest and arranges teardown.
func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	svc := New(opts)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// postJob submits a job and decodes the response envelope.
func postJob(t *testing.T, base string, body map[string]any) (int, http.Header, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, resp.Header, out
}

func getJSON(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, out
}

func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response is not an error envelope: %v", body)
	}
	code, _ := env["code"].(string)
	return code
}

// pollState polls the job endpoint until the state predicate holds.
func pollState(t *testing.T, base, id string, want func(string) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, body := getJSON(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d (%v)", id, code, body)
		}
		if st, _ := body["state"].(string); want(st) {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach wanted state", id)
	return nil
}

// blockingRunner returns a Runner that parks jobs until release is
// closed (or the job context ends), reporting each start on started.
func blockingRunner(started chan string, release chan struct{}) Runner {
	return func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error) {
		select {
		case started <- c.Name:
		default:
		}
		select {
		case <-release:
			return &scanpower.Comparison{Circuit: c.Name}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestSubmitWaitResult drives the happy path end to end with a real
// experiment: inline bench in, wait-mode submit, v1 result document out.
func TestSubmitWaitResult(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 2})

	code, _, body := postJob(t, srv.URL, map[string]any{
		"bench": s27Bench, "name": "s27", "wait": true,
	})
	if code != http.StatusOK {
		t.Fatalf("wait submit: status %d (%v)", code, body)
	}
	if st := body["state"]; st != "done" {
		t.Fatalf("wait submit settled in state %v (err %v)", st, body["error"])
	}
	id, _ := body["id"].(string)
	resultURL, _ := body["result_url"].(string)
	if id == "" || resultURL == "" {
		t.Fatalf("missing id/result_url in %v", body)
	}

	resp, err := http.Get(srv.URL + resultURL)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", resp.StatusCode, raw)
	}
	var cmp scanpower.Comparison
	if err := json.Unmarshal(raw, &cmp); err != nil {
		t.Fatalf("result is not scanpower/comparison/v1: %v\n%s", err, raw)
	}
	if cmp.Circuit != "s27" || cmp.Patterns == 0 || cmp.Stats.FFs != 3 {
		t.Errorf("result looks wrong: circuit=%q patterns=%d ffs=%d",
			cmp.Circuit, cmp.Patterns, cmp.Stats.FFs)
	}
	if cmp.Proposed.DynamicPerHz >= cmp.Traditional.DynamicPerHz {
		t.Errorf("proposed dynamic %.3e not below traditional %.3e",
			cmp.Proposed.DynamicPerHz, cmp.Traditional.DynamicPerHz)
	}

	// The status endpoint agrees, and the terminal job stays pollable.
	got := pollState(t, srv.URL, id, func(st string) bool { return st == "done" })
	if got["result_url"] != resultURL {
		t.Errorf("status result_url %v != %v", got["result_url"], resultURL)
	}
}

// TestSubmitAsyncPoll covers the 202-then-poll flow and the 409 not-ready
// result state.
func TestSubmitAsyncPoll(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	<-started

	rcode, hdr, rbody := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if rcode != http.StatusConflict || errCode(t, rbody) != "not_ready" {
		t.Fatalf("early result: status %d code %q", rcode, errCode(t, rbody))
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("not-ready result without Retry-After")
	}

	close(release)
	pollState(t, srv.URL, id, func(st string) bool { return st == "done" })
}

// TestQueueFullBackpressure fills the queue (1 worker busy + 1 waiting)
// and checks the third submit is rejected with 429 and Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	reg := telemetry.NewRegistry()
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 1, Registry: reg,
		Runner: blockingRunner(started, release),
	})

	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d (%v)", code, body)
	}
	<-started // the worker is now parked on the first job

	if code, _, body = postJob(t, srv.URL, map[string]any{"circuit": "s382"}); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d (%v)", code, body)
	}

	code, hdr, body := postJob(t, srv.URL, map[string]any{"circuit": "s444"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429 (%v)", code, body)
	}
	if errCode(t, body) != "queue_full" {
		t.Errorf("error code %q, want queue_full", errCode(t, body))
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)

	// After the backlog settles, the rejection is visible on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		MetricJobsRejected, MetricJobsSubmitted, MetricQueueDepth,
		MetricInflight, MetricRequestSeconds, MetricResponses,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestCoalescing checks identical submissions attach to one job.
func TestCoalescing(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	code, _, first := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted || first["coalesced"] == true {
		t.Fatalf("first submit: status %d (%v)", code, first)
	}
	code, _, second := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusOK {
		t.Fatalf("coalesced submit: status %d (%v)", code, second)
	}
	if second["coalesced"] != true || second["id"] != first["id"] {
		t.Fatalf("second submit not coalesced onto %v: %v", first["id"], second)
	}
	// A different backend is a different job.
	code, _, third := postJob(t, srv.URL, map[string]any{"circuit": "s344", "measure": "dense"})
	if code != http.StatusAccepted || third["id"] == first["id"] {
		t.Fatalf("distinct-backend submit coalesced: status %d (%v)", code, third)
	}
	close(release)
	pollState(t, srv.URL, first["id"].(string), func(st string) bool { return st == "done" })
}

// TestJobDeadline submits with a tiny timeout_ms against a parked runner
// and expects the failed state and a 504 result.
func TestJobDeadline(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344", "timeout_ms": 50})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	got := pollState(t, srv.URL, id, func(st string) bool { return st == "failed" })
	if msg, _ := got["error"].(string); !strings.Contains(msg, "deadline") {
		t.Errorf("failed job error %q does not mention the deadline", msg)
	}

	rcode, _, rbody := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if rcode != http.StatusGatewayTimeout || errCode(t, rbody) != "deadline_exceeded" {
		t.Errorf("result: status %d code %q, want 504 deadline_exceeded", rcode, errCode(t, rbody))
	}
}

// TestWaitDisconnectCancels checks that a client walking away from a
// wait-mode submit cancels the job it created.
func TestWaitDisconnectCancels(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		b, _ := json.Marshal(map[string]any{"circuit": "s344", "wait": true})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			srv.URL+"/v1/jobs", bytes.NewReader(b))
		if err != nil {
			waitErr <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		waitErr <- err
	}()
	<-started // the wait-mode job is running

	// A second submit coalesces onto it — that is how we learn its ID
	// without the (never-delivered) wait response.
	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusOK || body["coalesced"] != true {
		t.Fatalf("coalescing probe: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)

	cancel() // client disconnects
	if err := <-waitErr; err == nil {
		t.Fatal("wait request returned without error despite cancellation")
	}
	got := pollState(t, srv.URL, id, func(st string) bool { return st == "canceled" })

	rcode, _, rbody := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if rcode != http.StatusGone || errCode(t, rbody) != "canceled" {
		t.Errorf("result of canceled job: status %d code %q, want 410 canceled", rcode, errCode(t, rbody))
	}
	_ = got
}

// TestCancelEndpoint covers DELETE /v1/jobs/{id} for a queued job.
func TestCancelEndpoint(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	<-started
	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s382"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["state"] != "canceled" {
		t.Fatalf("DELETE: status %d state %v", resp.StatusCode, out["state"])
	}
}

// TestDrainRejectsSubmits checks graceful drain: running jobs finish,
// healthz flips to 503, new submits are rejected with the draining code.
func TestDrainRejectsSubmits(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(started, release),
	})

	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	// healthz flips to draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		hcode, _, hbody := getJSON(t, srv.URL+"/v1/healthz")
		if hcode == http.StatusServiceUnavailable && hbody["status"] == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining (last: %d %v)", hcode, hbody)
		}
		time.Sleep(5 * time.Millisecond)
	}

	scode, _, sbody := postJob(t, srv.URL, map[string]any{"circuit": "s382"})
	if scode != http.StatusServiceUnavailable || errCode(t, sbody) != "draining" {
		t.Fatalf("submit during drain: status %d code %q", scode, errCode(t, sbody))
	}

	close(release) // let the running job finish
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The drained service still answers reads.
	got := pollState(t, srv.URL, id, func(st string) bool { return st == "done" })
	if got["state"] != "done" {
		t.Fatalf("running job did not survive the drain: %v", got)
	}
}

// TestSubmitValidation covers the error envelope for each bad input.
func TestSubmitValidation(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 1})

	cases := []struct {
		name   string
		body   map[string]any
		status int
		code   string
	}{
		{"empty", map[string]any{}, http.StatusBadRequest, "bad_request"},
		{"both sources", map[string]any{"circuit": "s344", "bench": s27Bench}, http.StatusBadRequest, "bad_request"},
		{"bad measure", map[string]any{"circuit": "s344", "measure": "quantum"}, http.StatusBadRequest, "bad_request"},
		{"negative timeout", map[string]any{"circuit": "s344", "timeout_ms": -1}, http.StatusBadRequest, "bad_request"},
		{"unknown benchmark", map[string]any{"circuit": "s9999"}, http.StatusNotFound, "unknown_benchmark"},
		{"malformed bench", map[string]any{"bench": "INPUT(a)\nnot an assignment\n"}, http.StatusUnprocessableEntity, "bad_bench"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postJob(t, srv.URL, tc.body)
			if code != tc.status || errCode(t, body) != tc.code {
				t.Errorf("status %d code %q, want %d %q (%v)",
					code, errCode(t, body), tc.status, tc.code, body)
			}
		})
	}

	if code, _, body := getJSON(t, srv.URL+"/v1/jobs/job-999"); code != http.StatusNotFound ||
		errCode(t, body) != "unknown_job" {
		t.Errorf("unknown job: status %d code %q", code, errCode(t, body))
	}
}

// TestBenchmarksEndpoint checks the circuit listing: structured entries
// with published statistics, plus the historical bare name array.
func TestBenchmarksEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 1})
	code, _, body := getJSON(t, srv.URL+"/v1/benchmarks")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/benchmarks: status %d", code)
	}
	entries, _ := body["benchmarks"].([]any)
	if len(entries) != 12 {
		t.Fatalf("got %d benchmarks, want 12: %v", len(entries), entries)
	}
	found := false
	for _, e := range entries {
		row, _ := e.(map[string]any)
		if row["name"] != "s344" {
			continue
		}
		found = true
		if row["gates"] != float64(160) || row["scan_cells"] != float64(15) || row["chains"] != float64(1) {
			t.Errorf("s344 stats wrong: %v", row)
		}
	}
	if !found {
		t.Errorf("s344 missing from %v", entries)
	}
	names, _ := body["names"].([]any)
	if len(names) != 12 || names[0] != "s1196" {
		t.Fatalf("legacy names array wrong: %v", names)
	}
}

// TestFailedJobLeavesCoalescingMap checks a failed job is not served as a
// cache entry to an identical retry.
func TestFailedJobLeavesCoalescingMap(t *testing.T) {
	fail := true
	_, srv := newTestServer(t, Options{
		Workers: 1, QueueSize: 2,
		Runner: func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error) {
			if fail {
				fail = false
				return nil, fmt.Errorf("injected failure")
			}
			return &scanpower.Comparison{Circuit: c.Name}, nil
		},
	})

	code, _, body := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := body["id"].(string)
	pollState(t, srv.URL, id, func(st string) bool { return st == "failed" })

	rcode, _, rbody := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result")
	if rcode != http.StatusInternalServerError || errCode(t, rbody) != "job_failed" {
		t.Errorf("failed result: status %d code %q", rcode, errCode(t, rbody))
	}

	// The retry is a fresh job, not a coalesced hit on the failure.
	code, _, retry := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusAccepted || retry["coalesced"] == true || retry["id"] == id {
		t.Fatalf("retry after failure coalesced: status %d (%v)", code, retry)
	}
	pollState(t, srv.URL, retry["id"].(string), func(st string) bool { return st == "done" })

	// A completed job, by contrast, is served as a cache entry.
	code, _, cached := postJob(t, srv.URL, map[string]any{"circuit": "s344"})
	if code != http.StatusOK || cached["coalesced"] != true || cached["id"] != retry["id"] {
		t.Fatalf("done job not served as cache entry: status %d (%v)", code, cached)
	}
}
