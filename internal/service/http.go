package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/api"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/techmap"
	"repro/internal/telemetry"
	"repro/internal/verilog"
)

// maxBenchBytes bounds inline source payloads (.bench, Verilog, VCD); the
// largest ISCAS89 source is well under 1 MiB.
const maxBenchBytes = 8 << 20

// Handler returns the service's HTTP API mounted next to the telemetry
// endpoints (/metrics, /debug/vars, /debug/pprof):
//
//	POST   /v1/jobs            submit a job (source union: built-in name,
//	                           inline .bench or inline Verilog; optional
//	                           switching-activity block)
//	GET    /v1/jobs/{id}       job status
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/jobs/{id}/result  scanpower/comparison/v1 result document
//	GET    /v1/jobs/{id}/trace   scanpower/trace/v1 merged cross-node span tree
//	GET    /v1/traces/{id}     this node's raw segments of one trace
//	GET    /v1/benchmarks      built-in Table I circuits (structured + names)
//	GET    /v1/healthz         queue/inflight/cache/store stats; 503 while draining
//	GET    /v1/cluster         membership, peer health and store status
//	GET    /v1/node/metrics    this node's typed registry snapshot
//	GET    /v1/cluster/metrics scanpower/cluster-metrics/v1 fused snapshot
//
// Errors are `{"error":{"code":..., "message":...}}` envelopes.
func (s *Service) Handler() http.Handler {
	mux := telemetry.NewMux(s.reg)
	mux.Handle("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	mux.Handle("GET /v1/jobs/{id}/result", s.instrument("result", s.handleResult))
	mux.Handle("GET /v1/jobs/{id}/trace", s.instrument("trace", s.handleJobTrace))
	mux.Handle("GET /v1/traces/{id}", s.instrument("trace_segments", s.handleTraceSegments))
	mux.Handle("GET /v1/benchmarks", s.instrument("benchmarks", s.handleBenchmarks))
	mux.Handle("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /v1/cluster", s.instrument("cluster", s.handleCluster))
	mux.Handle("GET /v1/node/metrics", s.instrument("node_metrics", s.handleNodeMetrics))
	mux.Handle("GET /v1/cluster/metrics", s.instrument("cluster_metrics", s.handleClusterMetrics))
	return mux
}

// statusWriter captures the response code for the per-endpoint counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint latency histogram and
// response counter.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram(fmt.Sprintf(MetricRequestSeconds+`{endpoint=%q}`, endpoint), nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter(fmt.Sprintf(MetricResponses+`{endpoint=%q,code="%d"}`, endpoint, sw.code)).Inc()
	})
}

// errorEnvelope is the wire form of every non-2xx response body.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	writeJSON(w, status, env)
}

// submitRequest is the POST /v1/jobs body: the shared wire type of
// repro/api, so the server decodes, validates (api.SubmitBody.Validate)
// and forwards exactly the contract the typed client speaks — the source
// union, the optional activity block, and the legacy flat fields.
type submitRequest = api.SubmitBody

// jobResponse is the wire form of a job's observable state. Node is the
// owning daemon's base URL (when configured): in cluster mode a submit
// may be forwarded, and polls, cancels and result fetches for the job
// must go to the node named here.
type jobResponse struct {
	ID        string `json:"id"`
	Node      string `json:"node,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	Circuit   string `json:"circuit"`
	Measure   string `json:"measure"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Error     string `json:"error,omitempty"`
	Created   string `json:"created,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Service) jobJSON(j *Job, coalesced bool) jobResponse {
	snap := s.Snapshot(j)
	resp := jobResponse{
		ID:        snap.ID,
		Node:      s.opts.Self,
		TraceID:   snap.TraceID,
		Circuit:   snap.Circuit,
		Measure:   string(effectiveMeasure(snap.Measure)),
		State:     string(snap.State),
		Coalesced: coalesced,
		TimeoutMS: snap.Timeout.Milliseconds(),
		Created:   stamp(snap.Created),
		Started:   stamp(snap.Started),
		Finished:  stamp(snap.Finished),
	}
	if snap.Err != nil {
		resp.Error = snap.Err.Error()
	}
	if snap.State == StateDone {
		resp.ResultURL = "/v1/jobs/" + snap.ID + "/result"
	}
	return resp
}

func effectiveMeasure(m scanpower.MeasureBackend) scanpower.MeasureBackend {
	if m == "" {
		return scanpower.MeasurePacked
	}
	return m
}

func validMeasure(m string) bool {
	if m == "" {
		return true
	}
	for _, b := range scanpower.MeasureBackends() {
		if scanpower.MeasureBackend(m) == b {
			return true
		}
	}
	return false
}

// resolveCircuit turns a Validate-clean request into a library-mapped
// circuit: built-in names via Benchmark, inline .bench via ParseBench,
// inline Verilog via verilog.ParseString, each followed by Prepare when
// the elaborated netlist is not already library-mapped.
func resolveCircuit(req *submitRequest) (*netlist.Circuit, int, string, error) {
	kind, payload, name := req.Resolved()
	switch kind {
	case api.SourceCircuit:
		c, err := scanpower.Benchmark(payload)
		if err != nil {
			return nil, http.StatusNotFound, "unknown_benchmark", err
		}
		return c, 0, "", nil
	case api.SourceVerilog:
		c, err := verilog.ParseString(payload, name)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, api.CodeBadVerilog, err
		}
		if !techmap.IsMapped(c, 4) {
			if c, err = scanpower.Prepare(c); err != nil {
				return nil, http.StatusUnprocessableEntity, api.CodeBadVerilog, err
			}
		}
		return c, 0, "", nil
	default: // api.SourceBench
		c, err := scanpower.ParseBench(payload, name)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, "bad_bench", err
		}
		if !techmap.IsMapped(c, 4) {
			if c, err = scanpower.Prepare(c); err != nil {
				return nil, http.StatusUnprocessableEntity, "bad_bench", err
			}
		}
		return c, 0, "", nil
	}
}

// resolveActivity turns the request's activity block into the engine's
// profile form against the resolved circuit's primary inputs; nil in,
// nil out.
func resolveActivity(req *submitRequest, c *netlist.Circuit) (*power.ActivityProfile, *api.Error) {
	if req.Activity == nil {
		return nil, nil
	}
	names := make([]string, len(c.PIs))
	for i, pi := range c.PIs {
		names[i] = c.Nets[pi].Name
	}
	return req.Activity.Profile(names)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, maxBenchBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return
	}
	if verr := req.Validate(); verr != nil {
		writeError(w, verr.Status, verr.Code, verr.Message)
		return
	}
	c, status, code, err := resolveCircuit(&req)
	if err != nil {
		writeError(w, status, code, err.Error())
		return
	}
	prof, aerr := resolveActivity(&req, c)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, aerr.Message)
		return
	}

	// Adopt an incoming trace context if the header parses; otherwise a
	// fresh trace is minted at the first span. The forwarded flag always
	// wins over the trace header: a request carrying ForwardedHeader runs
	// locally even if the trace header is absent or malformed (the job
	// simply starts a fresh trace), so a disagreement between the two can
	// cost correlation but never a forwarding loop.
	tc, _ := telemetry.ParseTraceparent(r.Header.Get(TraceHeader))
	if s.cluster != nil && r.Header.Get(ForwardedHeader) == "" {
		if s.forwardSubmit(w, r, c.Fingerprint(), &req, &tc) {
			return
		}
	}

	j, coalesced, err := s.SubmitActivityTraced(c, scanpower.MeasureBackend(req.Measure),
		time.Duration(req.TimeoutMS)*time.Millisecond, prof, tc)
	if err != nil {
		var serr *SubmitError
		if errors.As(err, &serr) {
			switch serr.Code {
			case "queue_full":
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, serr.Code, serr.Error())
			default: // draining
				w.Header().Set("Retry-After", "5")
				writeError(w, http.StatusServiceUnavailable, serr.Code, serr.Error())
			}
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}

	if req.Wait {
		select {
		case <-s.Done(j):
		case <-r.Context().Done():
			if !coalesced {
				// The requester created this job and walked away; stop
				// burning the worker on it. Coalesced submits leave the
				// original requester's job alone.
				s.Cancel(j)
			}
			return // client is gone; the response is undeliverable
		}
		writeJSON(w, http.StatusOK, s.jobJSON(j, coalesced))
		return
	}

	status = http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, s.jobJSON(j, coalesced))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.jobJSON(j, false))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no such job")
		return
	}
	s.Cancel(j)
	writeJSON(w, http.StatusOK, s.jobJSON(j, false))
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no such job")
		return
	}
	snap := s.Snapshot(j)
	switch snap.State {
	case StateQueued, StateRunning:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "not_ready",
			fmt.Sprintf("job is %s; retry later", snap.State))
	case StateCanceled:
		writeError(w, http.StatusGone, "canceled", "job was canceled")
	case StateFailed:
		if errors.Is(snap.Err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", snap.Err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "job_failed", snap.Err.Error())
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		// Serve the canonical bytes captured when the job settled (or
		// loaded from the store): re-marshalling here would work, but
		// keeping one byte string end to end is what makes a warm-start
		// response provably identical to the original.
		b := snap.Wire
		if b == nil {
			var err error
			if b, err = json.Marshal(snap.Result); err != nil {
				writeError(w, http.StatusInternalServerError, "internal", err.Error())
				return
			}
		}
		w.Write(append(b, '\n'))
	}
}

func (s *Service) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.BenchmarksResponse{
		Benchmarks: s.BenchmarkEntries(),
		Names:      s.Benchmarks(),
	})
}

// healthzResponse is the GET /v1/healthz body.
type healthzResponse struct {
	Status        string       `json:"status"`
	Node          string       `json:"node,omitempty"`
	UptimeSec     float64      `json:"uptime_sec"`
	Version       string       `json:"version,omitempty"`
	GoVersion     string       `json:"go_version,omitempty"`
	Revision      string       `json:"revision,omitempty"`
	QueueDepth    int          `json:"queue_depth"`
	QueueCapacity int          `json:"queue_capacity"`
	Inflight      int          `json:"inflight"`
	Workers       int          `json:"workers"`
	Jobs          int          `json:"jobs"`
	CacheHits     int64        `json:"cache_hits"`
	CacheMisses   int64        `json:"cache_misses"`
	Store         *storeStatus `json:"store,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	resp := healthzResponse{
		Status:        "ok",
		Node:          s.node,
		UptimeSec:     time.Since(s.started).Seconds(),
		Version:       s.build.Version,
		GoVersion:     s.build.GoVersion,
		Revision:      s.build.Revision,
		QueueDepth:    st.QueueDepth,
		QueueCapacity: st.QueueCapacity,
		Inflight:      st.Inflight,
		Workers:       st.Workers,
		Jobs:          st.Jobs,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
	}
	if s.store != nil {
		resp.Store = &storeStatus{
			Dir:       s.store.Dir(),
			Entries:   st.Store.Entries,
			Bytes:     st.Store.Bytes,
			Hits:      st.Store.Hits,
			Misses:    st.Store.Misses,
			Puts:      st.Store.Puts,
			Evictions: st.Store.Evictions,
			Corrupt:   st.Store.Corrupt,
		}
	}
	status := http.StatusOK
	if st.Draining {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
