package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// ClusterMetricsSchemaV1 tags the GET /v1/cluster/metrics response.
const ClusterMetricsSchemaV1 = "scanpower/cluster-metrics/v1"

// latencySummary is the fused view of one endpoint's request-latency
// histogram.
type latencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_sec"`
	P95   float64 `json:"p95_sec"`
	P99   float64 `json:"p99_sec"`
}

// metricsSummary is the operator-facing digest of one registry snapshot:
// occupancy, job outcomes, store efficiency and request latency. Computed
// per node and for the fused cluster snapshot with the same code, so the
// cluster row is exactly the sum of the node rows.
type metricsSummary struct {
	QueueDepth   float64                   `json:"queue_depth"`
	Inflight     float64                   `json:"inflight"`
	Jobs         map[string]int64          `json:"jobs_by_state,omitempty"`
	StoreHits    int64                     `json:"store_hits"`
	StoreMisses  int64                     `json:"store_misses"`
	StoreHitRate float64                   `json:"store_hit_rate"`
	Latency      map[string]latencySummary `json:"latency,omitempty"`
}

// labelValue extracts the first label's value from a series name of the
// form family{label="value",...}; "" when the series has no labels.
func labelValue(series, family, label string) (string, bool) {
	prefix := family + "{" + label + `="`
	if !strings.HasPrefix(series, prefix) {
		return "", false
	}
	rest := series[len(prefix):]
	if i := strings.IndexByte(rest, '"'); i >= 0 {
		return rest[:i], true
	}
	return "", false
}

// summarize digests a registry snapshot into the summary block.
func summarize(snap *telemetry.RegistrySnapshot) metricsSummary {
	out := metricsSummary{
		QueueDepth: snap.Gauges[MetricQueueDepth],
		Inflight:   snap.Gauges[MetricInflight],
	}
	for name, v := range snap.Counters {
		switch name {
		case MetricStoreHits:
			out.StoreHits = v
		case MetricStoreMisses:
			out.StoreMisses = v
		}
		if state, ok := labelValue(name, MetricJobsByState, "state"); ok {
			if out.Jobs == nil {
				out.Jobs = map[string]int64{}
			}
			out.Jobs[state] += v
		}
	}
	if total := out.StoreHits + out.StoreMisses; total > 0 {
		out.StoreHitRate = float64(out.StoreHits) / float64(total)
	}
	for name, hs := range snap.Histograms {
		endpoint, ok := labelValue(name, MetricRequestSeconds, "endpoint")
		if !ok || hs.Count == 0 {
			continue
		}
		if out.Latency == nil {
			out.Latency = map[string]latencySummary{}
		}
		out.Latency[endpoint] = latencySummary{
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P95:   hs.Quantile(0.95),
			P99:   hs.Quantile(0.99),
		}
	}
	return out
}

// nodeMetricsRow is one member's block in the cluster metrics response.
type nodeMetricsRow struct {
	Node    string          `json:"node"`
	Self    bool            `json:"self,omitempty"`
	Error   string          `json:"error,omitempty"`
	Summary *metricsSummary `json:"summary,omitempty"`
}

// clusterMetricsResponse is the GET /v1/cluster/metrics body: the fused
// registry snapshot (counters and gauges summed per series, histogram
// buckets bit-exact sums), an operator summary of the fusion, and the
// per-node breakdown.
type clusterMetricsResponse struct {
	Schema  string                      `json:"schema"`
	Self    string                      `json:"self,omitempty"`
	Summary metricsSummary              `json:"summary"`
	Nodes   []nodeMetricsRow            `json:"nodes"`
	Fused   *telemetry.RegistrySnapshot `json:"fused"`
}

// handleNodeMetrics serves this node's typed registry snapshot — the raw
// unit of cluster fusion, unlike /metrics which is Prometheus text.
func (s *Service) handleNodeMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Export())
}

// handleClusterMetrics serves the fused snapshot: this node's export
// merged with every live peer's, plus per-node summaries. A peer that
// cannot be pulled (or whose histogram layouts disagree) contributes an
// error row instead of failing the query.
func (s *Service) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	self := s.reg.Export()
	resp := clusterMetricsResponse{
		Schema: ClusterMetricsSchemaV1,
		Self:   s.opts.Self,
	}
	selfSummary := summarize(self)
	resp.Nodes = append(resp.Nodes, nodeMetricsRow{
		Node: s.node, Self: true, Summary: &selfSummary,
	})
	fused := self.Clone()

	if s.cluster != nil {
		var peers []string
		for _, node := range s.cluster.ring.nodes {
			if node != s.cluster.self {
				peers = append(peers, node)
			}
		}
		snaps := make([]*telemetry.RegistrySnapshot, len(peers))
		errs := make([]error, len(peers))
		var wg sync.WaitGroup
		for i, node := range peers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				snaps[i], errs[i] = pullNodeMetrics(r.Context(), node)
			}()
		}
		wg.Wait()
		for i, node := range peers {
			row := nodeMetricsRow{Node: node}
			switch {
			case errs[i] != nil:
				row.Error = errs[i].Error()
				s.log.Warn("metrics pull failed", "peer", node, "error", errs[i])
			default:
				sum := summarize(snaps[i])
				row.Summary = &sum
				if err := fused.Merge(snaps[i]); err != nil {
					// Merge aborts on the first incompatible series; the
					// fusion may hold part of this peer, so flag the row.
					row.Error = err.Error()
					s.log.Warn("metrics fusion failed", "peer", node, "error", err)
				}
			}
			resp.Nodes = append(resp.Nodes, row)
		}
	}

	resp.Summary = summarize(fused)
	resp.Fused = fused
	writeJSON(w, http.StatusOK, resp)
}

// pullNodeMetrics fetches one peer's typed registry snapshot.
func pullNodeMetrics(ctx context.Context, node string) (*telemetry.RegistrySnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/node/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := probeClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap telemetry.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
