// Package service is the scan-power job service behind cmd/scanpowerd: an
// HTTP/JSON front end that accepts Table I experiments as queued jobs and
// runs them on a shared scanpower.Engine, so many clients ride one
// memoized ATPG cache.
//
// The layer adds what a traffic-bearing daemon needs on top of the
// in-process Engine:
//
//   - a bounded job queue with backpressure — submits beyond the queue
//     capacity are rejected with 429 and a Retry-After header instead of
//     piling up memory;
//   - per-job deadlines (requested as timeout_ms, clamped to a server
//     maximum) and cancellation — DELETE /v1/jobs/{id}, or the client
//     disconnecting from a wait-mode submit, aborts the job's context all
//     the way down the Engine's hot loops;
//   - singleflight coalescing — identical requests (same circuit
//     fingerprint, measurement backend and deadline class) attach to one
//     job and therefore one cache entry instead of re-running;
//   - graceful drain — new submits get 503 while queued and running jobs
//     finish, so SIGTERM never truncates a result or a trace span;
//   - telemetry — queue-depth/inflight gauges, per-endpoint latency
//     histograms and job counters in a telemetry.Registry, and the
//     run → circuit → stage span tree through the scanpower.Recorder.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/api"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Metric families emitted by the service layer. Endpoint label values are
// the route names: submit, job, result, cancel, benchmarks, healthz,
// cluster.
const (
	MetricQueueDepth     = "scanpower_service_queue_depth" // gauge
	MetricInflight       = "scanpower_service_inflight"    // gauge
	MetricJobsSubmitted  = "scanpower_service_jobs_submitted_total"
	MetricJobsCoalesced  = "scanpower_service_jobs_coalesced_total"
	MetricJobsRejected   = "scanpower_service_jobs_rejected_total"
	MetricJobsByState    = "scanpower_service_jobs_total"      // counter{state}
	MetricRequestSeconds = "scanpower_service_request_seconds" // histogram{endpoint}
	MetricResponses      = "scanpower_service_responses_total" // counter{endpoint,code}

	// Persistent result store (PR 6): disk hits served with no Engine
	// work, misses that fell through to compute, and entries persisted.
	MetricStoreHits   = "scanpower_service_store_hits_total"
	MetricStoreMisses = "scanpower_service_store_misses_total"
	MetricStorePuts   = "scanpower_service_store_puts_total"
	// Cluster forwarding: submits shipped to their owning peer, and
	// failovers past an unhealthy peer to the next ring replica.
	MetricForwarded        = "scanpower_service_forwarded_total"
	MetricForwardFailovers = "scanpower_service_forward_failovers_total"
	// Distributed tracing: trace segments retained in the in-memory ring
	// (a gauge tracking the ring occupancy) and remote segments pulled
	// from peers while answering trace queries.
	MetricTraceSegments   = "scanpower_service_trace_segments"
	MetricTracePulls      = "scanpower_service_trace_pulls_total"
	MetricTracePullErrors = "scanpower_service_trace_pull_errors_total"
)

// JobState enumerates the lifecycle of a job. Terminal states are
// StateDone, StateFailed and StateCanceled.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Runner executes one job's experiment. The default runs
// Engine.CompareWith on the service's shared Engine; tests substitute
// deterministic stand-ins, and future backends (remote farms, other
// analyses) plug in here.
type Runner func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error)

// Options configures New. The zero value is usable: default config,
// GOMAXPROCS-style worker default of 1, an unbuffered queue (admission
// requires an idle worker), no deadlines, and no telemetry sinks.
type Options struct {
	// Cfg is the base experiment configuration; per-job overrides
	// (measurement backend) are applied on top of it. Zero means
	// scanpower.DefaultConfig().
	Cfg scanpower.Config
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// QueueSize bounds the number of jobs waiting beyond the ones
	// running. 0 means no waiting room: a submit is admitted only if a
	// worker is idle, otherwise rejected with 429.
	QueueSize int
	// DefaultTimeout applies to jobs that request no deadline (0 = none).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; larger requests are
	// clamped (0 = no cap).
	MaxTimeout time.Duration
	// RetainJobs bounds how many terminal jobs are kept for result
	// polling; the oldest are evicted first (default 1024).
	RetainJobs int
	// Registry receives service and Engine metrics (nil drops them).
	Registry *telemetry.Registry
	// Trace receives the job span tree (nil drops it).
	Trace *telemetry.TraceWriter
	// Runner overrides job execution (nil = the shared Engine).
	Runner Runner
	// Store persists completed results across restarts (nil = none).
	// Submits whose key is already stored become done jobs immediately,
	// with the stored wire bytes served verbatim and no Engine work.
	Store *store.Store
	// Self is this node's externally reachable base URL (for example
	// http://10.0.0.1:8344). Job responses carry it as the owning node so
	// cluster clients can direct polls at the right daemon. Optional for
	// single-node deployments; required for cluster mode.
	Self string
	// Peers lists the other cluster nodes' base URLs. Non-empty (with
	// Self set) enables cluster mode: submits are consistent-hash-sharded
	// by circuit fingerprint across Self+Peers, and non-owned submits are
	// forwarded to their owner with failover to ring successors.
	Peers []string
	// Node is this node's display name, tagged onto every trace span and
	// log line and reported by healthz. Defaults to Self, then "local".
	Node string
	// Logger receives structured service logs, each line carrying node,
	// and where applicable trace_id and job_id fields (nil drops them).
	Logger *slog.Logger
	// TraceCapacity bounds the in-memory ring of retained per-job trace
	// segments (0 = telemetry.DefTraceCapacity).
	TraceCapacity int
}

// jobKey identifies coalesceable submissions: the frozen circuit's
// structural fingerprint plus every override that changes what the job
// computes or how long it may run.
type jobKey struct {
	fp        uint64
	measure   scanpower.MeasureBackend
	timeoutMS int64
	// activity is the switching-activity profile hash (0 = no profile):
	// an activity annotation adds columns to the result, so annotated and
	// plain submits of the same circuit must not coalesce.
	activity uint64
}

// Job is one queued experiment. All mutable fields are guarded by the
// owning Service's mutex; Done is closed exactly once when the job
// reaches a terminal state.
type Job struct {
	ID      string
	Circuit string
	Measure scanpower.MeasureBackend
	Timeout time.Duration

	key      jobKey
	circ     *netlist.Circuit
	activity *power.ActivityProfile // nil = no activity annotation

	// Distributed trace identity and this node's segment of the span
	// tree. rootSpan covers the job's whole lifetime; queueSpan the wait
	// for a worker; runSpan the Engine execution.
	traceID  string
	spans    *telemetry.SpanBuilder
	rootSpan *telemetry.BuildSpan
	quSpan   *telemetry.BuildSpan
	runSpan  *telemetry.BuildSpan

	state    JobState
	result   *scanpower.Comparison
	wire     []byte // canonical comparison/v1 bytes, set when state is done
	err      error
	created  time.Time
	started  time.Time
	finished time.Time

	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
}

// Snapshot is a consistent copy of a job's observable state.
type Snapshot struct {
	ID       string
	TraceID  string
	Circuit  string
	Measure  scanpower.MeasureBackend
	Timeout  time.Duration
	State    JobState
	Err      error
	Result   *scanpower.Comparison
	Wire     []byte // canonical comparison/v1 bytes (done jobs only)
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Service is the job queue plus the shared Engine. Create with New; it is
// safe for concurrent use.
type Service struct {
	opts Options
	eng  *scanpower.Engine
	rec  *scanpower.Recorder
	reg  *telemetry.Registry
	run  Runner

	node    string // display name: opts.Node, else opts.Self, else "local"
	// idPrefix is "job-" for a standalone daemon; cluster members fold a
	// hash of their own URL in ("job-<8 hex>-") so job IDs are unique
	// across the cluster — a forwarding node must be able to tell a
	// peer's job from a same-numbered local one when resolving traces.
	idPrefix string
	log      *slog.Logger
	started time.Time
	build   telemetry.BuildInfo
	traces  *telemetry.TraceStore

	baseCtx  context.Context
	baseStop context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup // workers
	jobs  sync.WaitGroup // admitted, non-terminal jobs

	mu       sync.Mutex
	byID     map[string]*Job
	byKey    map[jobKey]*Job
	order    []string // admission order, for terminal-job eviction
	seq      int64
	inflight int
	draining bool
	stopped  bool

	store   *store.Store
	cluster *cluster

	queueDepth    *telemetry.Gauge
	inflightGauge *telemetry.Gauge
	submitted     *telemetry.Counter
	coalesced     *telemetry.Counter
	rejected      *telemetry.Counter
	storeHits     *telemetry.Counter
	storeMisses   *telemetry.Counter
	storePuts     *telemetry.Counter
	traceSegments *telemetry.Gauge
}

// New builds the service, wires the Engine's hooks into a Recorder over
// opts.Registry/opts.Trace, and starts the worker pool.
func New(opts Options) *Service {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.QueueSize < 0 {
		opts.QueueSize = 0
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 1024
	}
	if isZeroConfig(opts.Cfg) {
		opts.Cfg = scanpower.DefaultConfig()
	}
	node := opts.Node
	if node == "" {
		node = opts.Self
	}
	if node == "" {
		node = "local"
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Service{
		opts:     opts,
		eng:      scanpower.NewEngine(opts.Cfg),
		rec:      scanpower.NewRecorder(opts.Registry, opts.Trace),
		reg:      opts.Registry,
		node:     node,
		log:      logger.With("node", node),
		started:  time.Now(),
		build:    telemetry.RegisterBuildInfo(opts.Registry),
		traces:   telemetry.NewTraceStore(opts.TraceCapacity),
		baseCtx:  ctx,
		baseStop: stop,
		queue:    make(chan *Job, opts.QueueSize),
		byID:     make(map[string]*Job),
		byKey:    make(map[jobKey]*Job),

		store: opts.Store,

		queueDepth:    opts.Registry.Gauge(MetricQueueDepth),
		inflightGauge: opts.Registry.Gauge(MetricInflight),
		submitted:     opts.Registry.Counter(MetricJobsSubmitted),
		coalesced:     opts.Registry.Counter(MetricJobsCoalesced),
		rejected:      opts.Registry.Counter(MetricJobsRejected),
		storeHits:     opts.Registry.Counter(MetricStoreHits),
		storeMisses:   opts.Registry.Counter(MetricStoreMisses),
		storePuts:     opts.Registry.Counter(MetricStorePuts),
		traceSegments: opts.Registry.Gauge(MetricTraceSegments),
	}
	s.idPrefix = "job-"
	if len(opts.Peers) > 0 && opts.Self != "" {
		s.cluster = newCluster(opts.Self, opts.Peers, opts.Registry)
		h := fnv.New32a()
		h.Write([]byte(opts.Self))
		s.idPrefix = fmt.Sprintf("job-%08x-", h.Sum32())
	}
	s.eng.Hooks = s.rec.Hooks()
	s.run = opts.Runner
	if s.run == nil {
		s.run = func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error) {
			return s.eng.CompareWith(ctx, c, cfg)
		}
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// isZeroConfig reports whether cfg is the (unusable) zero Config, so New
// can substitute the default. DefaultConfig always sets the shared
// leakage model, so a nil Leak identifies the zero value.
func isZeroConfig(cfg scanpower.Config) bool {
	return cfg.Leak == nil
}

// Engine exposes the shared Engine (for cache stats).
func (s *Service) Engine() *scanpower.Engine { return s.eng }

// Manifest assembles the run manifest recorded so far; call after Drain
// for balanced per-circuit records.
func (s *Service) Manifest(label string) *telemetry.Manifest {
	return s.rec.Manifest(label)
}

// SubmitError is returned by Submit with the admission outcome encoded.
type SubmitError struct {
	// Code is one of "queue_full" or "draining".
	Code string
	msg  string
}

// Error implements the error interface.
func (e *SubmitError) Error() string { return e.msg }

// errQueueFull and errDraining are the two admission rejections.
var (
	errQueueFull = &SubmitError{Code: "queue_full", msg: "service: job queue is full"}
	errDraining  = &SubmitError{Code: "draining", msg: "service: draining, not accepting jobs"}
)

// Submit admits a job for circuit c under the given overrides, or
// coalesces it onto an existing identical job, minting a fresh trace for
// the job. The returned bool reports whether the submission was
// coalesced. Rejections return a *SubmitError. The circuit must already
// be library-mapped.
func (s *Service) Submit(c *netlist.Circuit, measure scanpower.MeasureBackend, timeout time.Duration) (*Job, bool, error) {
	return s.SubmitActivityTraced(c, measure, timeout, nil,
		telemetry.TraceContext{TraceID: telemetry.NewTraceID()})
}

// SubmitTraced is Submit under an incoming distributed trace context: a
// job this call creates joins tc's trace (its root span parenting to
// tc.SpanID), and its segment is retained for GET /v1/jobs/{id}/trace.
// A coalesced submit attaches to the existing job and keeps that job's
// original trace.
func (s *Service) SubmitTraced(c *netlist.Circuit, measure scanpower.MeasureBackend, timeout time.Duration, tc telemetry.TraceContext) (*Job, bool, error) {
	return s.SubmitActivityTraced(c, measure, timeout, nil, tc)
}

// SubmitActivityTraced is SubmitTraced with an optional switching-activity
// profile. The profile's hash joins the coalescing key and the store key,
// so annotated jobs coalesce with (and warm-start from) only identically
// annotated ones; nil behaves exactly like SubmitTraced, keying and
// storing under the pre-activity key.
func (s *Service) SubmitActivityTraced(c *netlist.Circuit, measure scanpower.MeasureBackend, timeout time.Duration, prof *power.ActivityProfile, tc telemetry.TraceContext) (*Job, bool, error) {
	if measure == "" {
		// Canonicalize to the server default so "no preference" and an
		// explicit default coalesce onto the same job.
		measure = s.opts.Cfg.Measure
		if measure == "" {
			measure = scanpower.MeasurePacked
		}
	}
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if s.opts.MaxTimeout > 0 && (timeout == 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	key := jobKey{fp: c.Fingerprint(), measure: measure,
		timeoutMS: timeout.Milliseconds(), activity: prof.Hash()}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return nil, false, errDraining
	}
	if j, ok := s.byKey[key]; ok {
		s.coalesced.Inc()
		return j, true, nil
	}

	if s.store != nil {
		// Disk lookup outside the lock: verification reads the entry file.
		// The byKey miss above may be stale afterwards, so re-check before
		// inserting — a racing identical submit coalesces as usual.
		s.mu.Unlock()
		wire, _, hit := s.store.Get(store.Key{
			Fingerprint: key.fp, Measure: string(measure), Activity: key.activity})
		s.mu.Lock()
		if s.draining || s.stopped {
			return nil, false, errDraining
		}
		if j, ok := s.byKey[key]; ok {
			s.coalesced.Inc()
			return j, true, nil
		}
		if hit {
			if j, ok := s.storedJobLocked(c, measure, timeout, key, wire, tc); ok {
				s.storeHits.Inc()
				s.log.Info("job served from store",
					"job_id", j.ID, "trace_id", j.traceID, "circuit", j.Circuit)
				return j, false, nil
			}
		}
		s.storeMisses.Inc()
	}

	s.seq++
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if timeout > 0 {
		// The deadline covers queue wait too: an admission the queue
		// cannot serve in time fails like a slow run would.
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j := &Job{
		ID:       s.idPrefix + strconv.FormatInt(s.seq, 10),
		Circuit:  c.Name,
		Measure:  measure,
		Timeout:  timeout,
		key:      key,
		circ:     c,
		activity: prof,
		state:    StateQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.rejected.Inc()
		return nil, false, errQueueFull
	}
	s.jobs.Add(1)
	s.byID[j.ID] = j
	s.byKey[key] = j
	s.order = append(s.order, j.ID)
	s.submitted.Inc()
	s.queueDepth.Set(float64(len(s.queue)))
	s.attachTraceLocked(j, tc)
	s.evictLocked()
	s.log.Info("job admitted",
		"job_id", j.ID, "trace_id", j.traceID,
		"circuit", j.Circuit, "measure", string(j.Measure),
		"timeout_ms", j.Timeout.Milliseconds())
	return j, false, nil
}

// attachTraceLocked joins the job to the given trace context: it builds
// this node's segment, opens the root "job" span (parented to the remote
// span when the submit was forwarded here) and the "queue" child, and
// retains the segment in the trace ring. Callers hold s.mu.
func (s *Service) attachTraceLocked(j *Job, tc telemetry.TraceContext) {
	if tc.TraceID == "" {
		tc.TraceID = telemetry.NewTraceID()
	}
	j.traceID = tc.TraceID
	j.spans = telemetry.NewSpanBuilder(tc.TraceID, s.node)
	j.spans.SetJobID(j.ID)
	j.rootSpan = j.spans.StartSpan(tc.SpanID, "job", map[string]any{
		"circuit": j.Circuit, "measure": string(effectiveMeasure(j.Measure)),
	})
	j.quSpan = j.rootSpan.Start("queue", nil)
	s.traces.Add(j.spans)
	s.traceSegments.Set(float64(s.traces.Len()))
}

// storedJobLocked materializes a store hit as an already-done job: the
// stored wire bytes are kept verbatim (handleResult serves them
// unre-encoded, so the response is bit-identical to the original
// computation) and no Engine work happens. Callers hold s.mu. Returns
// ok=false if the stored bytes do not decode as a Comparison — the
// checksum guards integrity, not decodability, so this is a degenerate
// case treated as a miss.
func (s *Service) storedJobLocked(c *netlist.Circuit, measure scanpower.MeasureBackend, timeout time.Duration, key jobKey, wire []byte, tc telemetry.TraceContext) (*Job, bool) {
	var cmp scanpower.Comparison
	if err := json.Unmarshal(wire, &cmp); err != nil {
		return nil, false
	}
	s.seq++
	now := time.Now()
	j := &Job{
		ID:       s.idPrefix + strconv.FormatInt(s.seq, 10),
		Circuit:  c.Name,
		Measure:  measure,
		Timeout:  timeout,
		key:      key,
		circ:     c,
		state:    StateDone,
		result:   &cmp,
		wire:     wire,
		created:  now,
		finished: now,
		done:     make(chan struct{}),
		ctx:      s.baseCtx,
		cancel:   func() {},
	}
	close(j.done)
	s.byID[j.ID] = j
	s.byKey[key] = j
	s.order = append(s.order, j.ID)
	s.submitted.Inc()
	if tc.TraceID == "" {
		tc.TraceID = telemetry.NewTraceID()
	}
	j.traceID = tc.TraceID
	j.spans = telemetry.NewSpanBuilder(tc.TraceID, s.node)
	j.spans.SetJobID(j.ID)
	root := j.spans.StartSpan(tc.SpanID, "job", map[string]any{
		"circuit": j.Circuit, "measure": string(effectiveMeasure(j.Measure)),
	})
	hit := root.Start("store-hit", nil)
	hit.End(map[string]any{"bytes": len(wire)})
	root.End(map[string]any{"state": string(StateDone), "store_hit": true})
	s.traces.Add(j.spans)
	s.traceSegments.Set(float64(s.traces.Len()))
	s.reg.Counter(fmt.Sprintf(MetricJobsByState+`{state=%q}`, StateDone)).Inc()
	s.evictLocked()
	return j, true
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Callers hold s.mu.
func (s *Service) evictLocked() {
	excess := len(s.byID) - s.opts.RetainJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.byID[id]
		if excess > 0 && j != nil && j.state.Terminal() {
			delete(s.byID, id)
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// Snapshot returns a consistent copy of the job's state.
func (s *Service) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		ID: j.ID, TraceID: j.traceID, Circuit: j.Circuit, Measure: j.Measure,
		Timeout: j.Timeout, State: j.state, Err: j.err, Result: j.result,
		Wire: j.wire, Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// Done returns the channel closed when the job reaches a terminal state.
func (s *Service) Done(j *Job) <-chan struct{} { return j.done }

// Cancel aborts the job: queued jobs become canceled immediately, running
// jobs have their context cancelled and settle through the worker.
// Terminal jobs are unaffected. Reports whether the job was still live.
func (s *Service) Cancel(j *Job) bool {
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		s.finishLocked(j, StateCanceled, nil, context.Canceled)
		s.mu.Unlock()
		j.cancel()
		return true
	}
	s.mu.Unlock()
	j.cancel() // worker observes ctx.Err() and finishes the job
	return true
}

// Stats is the healthz view of the service.
type Stats struct {
	QueueDepth    int
	QueueCapacity int
	Inflight      int
	Workers       int
	Jobs          int
	Draining      bool
	CacheHits     int64
	CacheMisses   int64
	// Store mirrors the persistent result store's counters; zero when no
	// store is configured.
	Store store.Stats
}

// Stats returns the current queue/inflight/job counts.
func (s *Service) Stats() Stats {
	hits, misses := s.eng.CacheStats()
	st := s.store.Stats() // nil-safe
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Inflight:      s.inflight,
		Workers:       s.opts.Workers,
		Jobs:          len(s.byID),
		Draining:      s.draining,
		CacheHits:     hits,
		CacheMisses:   misses,
		Store:         st,
	}
}

// Benchmarks lists the built-in Table I circuits, sorted.
func (s *Service) Benchmarks() []string {
	names := scanpower.BenchmarkNames()
	sort.Strings(names)
	return names
}

// BenchmarkEntries lists the built-in Table I circuits with their
// published statistics, sorted by name. Gate and scan-cell counts come
// from the benchmark profiles (no circuit is generated); every Table I
// experiment uses a single scan chain.
func (s *Service) BenchmarkEntries() []api.Benchmark {
	entries := make([]api.Benchmark, 0, len(iscas.Profiles))
	for _, p := range iscas.Profiles {
		entries = append(entries, api.Benchmark{
			Name: p.Name, Gates: p.Gates, ScanCells: p.FFs, Chains: 1,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// worker executes queued jobs until the queue is closed by Drain.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob moves one job from queued to a terminal state.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	s.queueDepth.Set(float64(len(s.queue)))
	if j.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		// Deadline or shutdown hit before a worker got to it.
		s.finishLocked(j, failureState(err), nil, err)
		s.mu.Unlock()
		j.cancel()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.quSpan.End(nil)
	j.runSpan = j.rootSpan.Start("run", nil)
	s.inflight++
	s.inflightGauge.Set(float64(s.inflight))
	s.mu.Unlock()
	s.log.Debug("job running", "job_id", j.ID, "trace_id", j.traceID, "circuit", j.Circuit)

	cfg := s.opts.Cfg
	cfg.Measure = j.Measure
	cfg.Activity = j.activity
	cmp, err := s.run(j.ctx, j.circ, cfg)

	// Marshal the result once: the same bytes become the HTTP response
	// body and the persisted store entry, so a later warm-start serve is
	// bit-identical to this run's.
	var wire []byte
	if err == nil {
		if wire, err = json.Marshal(cmp); err == nil && s.store != nil {
			key := store.Key{Fingerprint: j.key.fp, Measure: string(j.Measure),
				Activity: j.key.activity}
			meta := store.Meta{Circuit: j.Circuit, Elapsed: time.Since(j.started)}
			if perr := s.store.Put(key, meta, wire); perr == nil {
				s.storePuts.Inc()
			}
		}
	}

	s.mu.Lock()
	s.inflight--
	s.inflightGauge.Set(float64(s.inflight))
	// Cancel may have raced the finish; finishLocked keeps the first
	// terminal state and ignores later settles.
	switch {
	case err != nil:
		s.finishLocked(j, failureState(err), nil, err)
	default:
		j.wire = wire
		s.finishLocked(j, StateDone, cmp, nil)
	}
	s.mu.Unlock()
	j.cancel()
	// Close the circuit's trace span now that its job is settled; an
	// Engine.Run progress feed would otherwise do this.
	s.rec.FinishCircuit(j.Circuit)
}

// failureState maps a job error to canceled/failed: explicit cancellation
// reads as canceled, everything else — including a blown deadline — as
// failed, with the error kept on the job.
func failureState(err error) JobState {
	if errors.Is(err, context.Canceled) {
		return StateCanceled
	}
	return StateFailed
}

// finishLocked settles a job into a terminal state and closes its trace
// spans — the queue span may still be open (canceled while waiting), so
// every span is ended here and End's idempotence keeps the segment
// balanced no matter which path settled first. Callers hold s.mu.
func (s *Service) finishLocked(j *Job, state JobState, cmp *scanpower.Comparison, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = cmp
	j.err = err
	j.finished = time.Now()
	if state != StateDone && s.byKey[j.key] == j {
		// Failed and canceled jobs leave the coalescing map so an
		// identical retry re-runs instead of inheriting the failure; done
		// jobs stay as served-from-cache entries.
		delete(s.byKey, j.key)
	}
	s.reg.Counter(fmt.Sprintf(MetricJobsByState+`{state=%q}`, state)).Inc()
	j.quSpan.End(map[string]any{"aborted": true})
	var runAttrs map[string]any
	rootAttrs := map[string]any{"state": string(state)}
	if err != nil {
		runAttrs = map[string]any{"error": err.Error()}
		rootAttrs["error"] = err.Error()
	}
	j.runSpan.End(runAttrs)
	j.rootSpan.End(rootAttrs)
	switch state {
	case StateFailed:
		s.log.Warn("job failed", "job_id", j.ID, "trace_id", j.traceID,
			"circuit", j.Circuit, "error", err)
	default:
		s.log.Info("job "+string(state), "job_id", j.ID, "trace_id", j.traceID,
			"circuit", j.Circuit, "elapsed_ms", j.finished.Sub(j.created).Milliseconds())
	}
	close(j.done)
	s.jobs.Done()
}

// Drain stops admission (new submits fail with a draining error), waits
// for queued and running jobs to settle — cancelling whatever is still
// live when ctx expires — then stops the workers and closes the trace
// span tree. Idempotent; subsequent calls wait for the first to finish.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-settled
	}

	if first {
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		close(s.queue)
	}
	s.wg.Wait()
	s.rec.Close()
	return err
}

// cancelAll cancels every non-terminal job (queued ones settle here,
// running ones through their worker).
func (s *Service) cancelAll() {
	s.mu.Lock()
	var live []*Job
	for _, j := range s.byID {
		if !j.state.Terminal() {
			live = append(live, j)
		}
	}
	s.mu.Unlock()
	for _, j := range live {
		s.Cancel(j)
	}
}

// Close is Drain with immediate cancellation of everything in flight.
func (s *Service) Close() error {
	s.baseStop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	if err == context.Canceled {
		return nil
	}
	return err
}
