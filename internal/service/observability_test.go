package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// traceDoc fetches and decodes GET /v1/jobs/{id}/trace.
func traceDoc(t *testing.T, base, id string) (int, map[string]any) {
	t.Helper()
	code, _, body := getJSON(t, base+"/v1/jobs/"+id+"/trace")
	return code, body
}

// spanNames extracts the span names from a trace document body.
func spanNames(body map[string]any) map[string]int {
	out := map[string]int{}
	spans, _ := body["spans"].([]any)
	for _, sp := range spans {
		m, _ := sp.(map[string]any)
		name, _ := m["name"].(string)
		out[name]++
	}
	return out
}

// TestLocalJobTrace: a single-node job's trace is one balanced tree —
// job with queue and run children, all tagged with this node's name —
// and the job response carries the trace ID.
func TestLocalJobTrace(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 4, Node: "alpha"})
	code, _, body := postJob(t, srv.URL, map[string]any{
		"bench": s27Bench, "name": "trace-local", "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("submit: status %d (%v)", code, body)
	}
	traceID, _ := body["trace_id"].(string)
	if len(traceID) != 32 {
		t.Fatalf("job trace_id = %q, want 32 hex chars", traceID)
	}

	tcode, tbody := traceDoc(t, srv.URL, body["id"].(string))
	if tcode != http.StatusOK || tbody["schema"] != TraceSchemaV1 {
		t.Fatalf("trace: status %d (%v)", tcode, tbody)
	}
	if tbody["trace_id"] != traceID {
		t.Errorf("trace doc trace_id = %v, want %v", tbody["trace_id"], traceID)
	}
	names := spanNames(tbody)
	for _, want := range []string{"job", "queue", "run"} {
		if names[want] != 1 {
			t.Errorf("span %q count = %d, want 1 (spans: %v)", want, names[want], names)
		}
	}
	nodes, _ := tbody["nodes"].([]any)
	if len(nodes) != 1 || nodes[0] != "alpha" {
		t.Errorf("trace nodes = %v, want [alpha]", nodes)
	}

	// Unknown jobs 404.
	if code, _ := traceDoc(t, srv.URL, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", code)
	}
}

// TestClientTraceHeaderAdopted: a submit carrying a valid trace header
// joins that trace instead of minting one; a malformed header falls back
// to a fresh trace.
func TestClientTraceHeaderAdopted(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID()}

	post := func(header, name string) map[string]any {
		t.Helper()
		b, _ := json.Marshal(map[string]any{"bench": s27Bench, "name": name, "wait": true})
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set(TraceHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	body := post(tc.Traceparent(), "trace-adopt")
	if body["trace_id"] != tc.TraceID {
		t.Errorf("job trace_id = %v, want adopted %v", body["trace_id"], tc.TraceID)
	}
	// The root span parents to the client's span.
	_, tbody := traceDoc(t, srv.URL, body["id"].(string))
	for _, sp := range tbody["spans"].([]any) {
		m := sp.(map[string]any)
		if m["name"] == "job" && m["parent_id"] != tc.SpanID {
			t.Errorf("job span parent = %v, want %v", m["parent_id"], tc.SpanID)
		}
	}

	body = post("not-a-traceparent", "trace-garbage")
	id, _ := body["trace_id"].(string)
	if len(id) != 32 || id == tc.TraceID {
		t.Errorf("garbage header: trace_id = %q, want fresh 32-hex ID", id)
	}
}

// TestForwardedJobTraceCrossNode is the tentpole acceptance check: a job
// submitted to a non-owning node yields one trace with spans from both
// the forwarding node and the owner, retrievable from either node.
func TestForwardedJobTraceCrossNode(t *testing.T) {
	lA, urlA := listenURL(t)
	lB, urlB := listenURL(t)
	newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{urlB}, Node: "node-a",
	})
	newClusterNode(t, lB, Options{
		Workers: 1, QueueSize: 8, Self: urlB, Peers: []string{urlA}, Node: "node-b",
	})

	r := newRing([]string{urlA, urlB})
	nameRemote := pickOwned(t, r, urlB)
	code, _, body := postJob(t, urlA, map[string]any{
		"bench": s27Bench, "name": nameRemote, "wait": true,
	})
	if code != http.StatusOK || body["state"] != "done" || body["node"] != urlB {
		t.Fatalf("forwarded submit: status %d (%v)", code, body)
	}
	id := body["id"].(string)
	traceID, _ := body["trace_id"].(string)
	if len(traceID) != 32 {
		t.Fatalf("forwarded job trace_id = %q", traceID)
	}

	for _, base := range []string{urlB, urlA} {
		tcode, tbody := traceDoc(t, base, id)
		if tcode != http.StatusOK {
			t.Fatalf("trace from %s: status %d (%v)", base, tcode, tbody)
		}
		if tbody["trace_id"] != traceID {
			t.Errorf("trace from %s: trace_id = %v, want %v", base, tbody["trace_id"], traceID)
		}
		nodes, _ := tbody["nodes"].([]any)
		if len(nodes) < 2 {
			t.Errorf("trace from %s: nodes = %v, want >= 2 distinct node names", base, nodes)
		}
		names := spanNames(tbody)
		for _, want := range []string{"ingress", "forward", "job", "queue", "run"} {
			if names[want] < 1 {
				t.Errorf("trace from %s: missing span %q (spans: %v)", base, want, names)
			}
		}
		// Every span belongs to the one trace; the forward span parents
		// the remote job span.
		var forwardID string
		for _, sp := range tbody["spans"].([]any) {
			m := sp.(map[string]any)
			if m["name"] == "forward" {
				forwardID, _ = m["span_id"].(string)
			}
		}
		for _, sp := range tbody["spans"].([]any) {
			m := sp.(map[string]any)
			if m["name"] == "job" && m["parent_id"] != forwardID {
				t.Errorf("trace from %s: job span parent = %v, want forward span %q",
					base, m["parent_id"], forwardID)
			}
		}
	}
}

// TestForwardCancelMidHopBalancedSpans: a client that disconnects while
// its submit is forwarded (the hop still in flight) leaves balanced
// span segments on the forwarding node — every started span ended.
func TestForwardCancelMidHopBalancedSpans(t *testing.T) {
	lA, urlA := listenURL(t)
	lB, urlB := listenURL(t)
	svcA := newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{urlB}, Node: "node-a",
	})
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svcB := newClusterNode(t, lB, Options{
		Workers: 1, QueueSize: 8, Self: urlB, Peers: []string{urlA}, Node: "node-b",
		Runner: blockingRunner(started, release),
	})

	r := newRing([]string{urlA, urlB})
	nameRemote := pickOwned(t, r, urlB)
	b, _ := json.Marshal(map[string]any{"bench": s27Bench, "name": nameRemote, "wait": true})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, urlA+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// The job is running on B (the hop happened); now the client walks
	// away mid-wait.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("forwarded job never started on the owner")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled request to error")
	}

	balanced := func(s *Service) bool {
		return s.traces.OpenSpans() == 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if balanced(svcA) && balanced(svcB) && svcA.traces.Len() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !balanced(svcA) || svcA.traces.Len() == 0 {
		t.Error("forwarding node has unbalanced or missing trace segments after mid-hop cancel")
	}
	if !balanced(svcB) {
		t.Error("owning node has unbalanced trace segments after mid-hop cancel")
	}
	// The forwarder's ingress segment recorded the hop.
	found := false
	for _, seg := range svcA.traces.All() {
		for _, sp := range seg.Spans {
			if sp.Name == "ingress" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no ingress span retained on the forwarding node")
	}
}

// TestLoopGuardWinsOverTraceHeader: a request carrying ForwardedHeader
// always runs locally — whether its trace header is valid (adopted),
// malformed (fresh trace), or absent — even when the ring says a peer
// owns the circuit. The disagreement costs correlation, never a loop.
func TestLoopGuardWinsOverTraceHeader(t *testing.T) {
	// The peer is a closed listener: any forwarding attempt would fail
	// loudly (failover counter), and loop-guarded submits must not try.
	dead, deadURL := listenURL(t)
	dead.Close()
	lA, urlA := listenURL(t)
	regA := telemetry.NewRegistry()
	var runs countingRunner
	newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{deadURL},
		Registry: regA, Runner: runs.runner(), Node: "node-a",
	})

	r := newRing([]string{urlA, deadURL})
	nameDead := pickOwned(t, r, deadURL)

	cases := []struct {
		name   string
		header string
	}{
		{"valid-trace-header", telemetry.TraceContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID()}.Traceparent()},
		{"malformed-trace-header", "zz-bogus"},
		{"no-trace-header", ""},
	}
	for i, tcase := range cases {
		b, _ := json.Marshal(map[string]any{
			"bench": s27Bench, "name": nameDead, "measure": []string{"packed", "fast", "dense"}[i], "wait": true,
		})
		req, err := http.NewRequest(http.MethodPost, urlA+"/v1/jobs", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, "1")
		if tcase.header != "" {
			req.Header.Set(TraceHeader, tcase.header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || body["state"] != "done" {
			t.Fatalf("%s: status %d (%v)", tcase.name, resp.StatusCode, body)
		}
		traceID, _ := body["trace_id"].(string)
		if len(traceID) != 32 {
			t.Errorf("%s: trace_id = %q, want 32 hex", tcase.name, traceID)
		}
		if want, ok := telemetry.ParseTraceparent(tcase.header); ok && traceID != want.TraceID {
			t.Errorf("%s: trace_id = %q, want adopted %q", tcase.name, traceID, want.TraceID)
		}
	}
	if runs.count() != 3 {
		t.Errorf("loop-guarded submits ran %d jobs locally, want 3", runs.count())
	}
	if got := regA.Counter(MetricForwardFailovers).Value(); got != 0 {
		t.Errorf("loop-guarded submit attempted forwarding: %d failovers", got)
	}
	if got := regA.Counter(MetricForwarded).Value(); got != 0 {
		t.Errorf("forwarded counter = %d, want 0", got)
	}
}

// metricsSnap decodes GET /v1/node/metrics.
func metricsSnap(t *testing.T, base string) *telemetry.RegistrySnapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/node/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestClusterMetricsFusion: the fused document's counters and histogram
// buckets are bit-exact sums of the per-node snapshots for series that
// the metrics requests themselves do not perturb.
func TestClusterMetricsFusion(t *testing.T) {
	lA, urlA := listenURL(t)
	lB, urlB := listenURL(t)
	newClusterNode(t, lA, Options{
		Workers: 1, QueueSize: 8, Self: urlA, Peers: []string{urlB}, Node: "node-a",
	})
	newClusterNode(t, lB, Options{
		Workers: 1, QueueSize: 8, Self: urlB, Peers: []string{urlA}, Node: "node-b",
	})

	// Land one job on each node so both registries have submit traffic.
	r := newRing([]string{urlA, urlB})
	for _, name := range []string{pickOwned(t, r, urlA), pickOwned(t, r, urlB)} {
		code, _, body := postJob(t, urlA, map[string]any{
			"bench": s27Bench, "name": name, "wait": true,
		})
		if code != http.StatusOK || body["state"] != "done" {
			t.Fatalf("submit %s: status %d (%v)", name, code, body)
		}
	}

	snapA, snapB := metricsSnap(t, urlA), metricsSnap(t, urlB)
	code, _, body := getJSON(t, urlA+"/v1/cluster/metrics")
	if code != http.StatusOK || body["schema"] != ClusterMetricsSchemaV1 {
		t.Fatalf("cluster metrics: status %d (%v)", code, body)
	}
	nodes, _ := body["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("cluster metrics reports %d nodes: %v", len(nodes), nodes)
	}
	for _, n := range nodes {
		row := n.(map[string]any)
		if row["error"] != nil {
			t.Errorf("node %v error: %v", row["node"], row["error"])
		}
		if row["summary"] == nil {
			t.Errorf("node %v has no summary", row["node"])
		}
	}

	fusedRaw, err := json.Marshal(body["fused"])
	if err != nil {
		t.Fatal(err)
	}
	var fused telemetry.RegistrySnapshot
	if err := json.Unmarshal(fusedRaw, &fused); err != nil {
		t.Fatal(err)
	}

	// Stable counters: submit-path series do not move during metrics
	// fetches, so fused must equal the exact per-node sum.
	for _, series := range []string{
		MetricJobsSubmitted,
		fmt.Sprintf(MetricJobsByState+`{state=%q}`, StateDone),
		MetricForwarded,
	} {
		want := snapA.Counters[series] + snapB.Counters[series]
		if got := fused.Counters[series]; got != want {
			t.Errorf("fused %s = %d, want %d (A=%d B=%d)", series, got, want,
				snapA.Counters[series], snapB.Counters[series])
		}
	}
	if fused.Counters[MetricJobsSubmitted] != 2 {
		t.Errorf("fused submitted = %d, want 2", fused.Counters[MetricJobsSubmitted])
	}

	// The submit latency histogram fuses bucket-by-bucket, bit-exact.
	series := fmt.Sprintf(MetricRequestSeconds+`{endpoint=%q}`, "submit")
	ha, hb, hf := snapA.Histograms[series], snapB.Histograms[series], fused.Histograms[series]
	if hf.Count != ha.Count+hb.Count || hf.Count == 0 {
		t.Fatalf("fused submit histogram count = %d, want %d", hf.Count, ha.Count+hb.Count)
	}
	for i := range hf.Counts {
		var a, b int64
		if i < len(ha.Counts) {
			a = ha.Counts[i]
		}
		if i < len(hb.Counts) {
			b = hb.Counts[i]
		}
		if hf.Counts[i] != a+b {
			t.Errorf("fused submit bucket %d = %d, want %d+%d", i, hf.Counts[i], a, b)
		}
	}

	// The summary digests the fusion: two done jobs across the cluster.
	summary, _ := body["summary"].(map[string]any)
	jobs, _ := summary["jobs_by_state"].(map[string]any)
	if jobs["done"] != float64(2) {
		t.Errorf("summary jobs done = %v, want 2 (%v)", jobs["done"], summary)
	}
}

// TestHealthzIdentity: healthz names the node, reports uptime and the
// build identity.
func TestHealthzIdentity(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 1, Node: "alpha"})
	code, _, body := getJSON(t, srv.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d (%v)", code, body)
	}
	if body["node"] != "alpha" {
		t.Errorf("healthz node = %v, want alpha", body["node"])
	}
	up, ok := body["uptime_sec"].(float64)
	if !ok || up < 0 {
		t.Errorf("healthz uptime_sec = %v", body["uptime_sec"])
	}
	gv, _ := body["go_version"].(string)
	if !strings.HasPrefix(gv, "go") {
		t.Errorf("healthz go_version = %q", gv)
	}
	if body["revision"] == "" || body["version"] == "" {
		t.Errorf("healthz build identity missing: %v", body)
	}
}
