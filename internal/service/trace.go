package service

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// TraceSchemaV1 tags the GET /v1/jobs/{id}/trace response document.
const TraceSchemaV1 = "scanpower/trace/v1"

// traceSegmentsResponse is the GET /v1/traces/{id} body: one node's raw
// retained segments of a trace, the unit a peer pulls while merging.
type traceSegmentsResponse struct {
	TraceID  string               `json:"trace_id"`
	Node     string               `json:"node,omitempty"`
	Segments []telemetry.JobTrace `json:"segments"`
}

// traceResponse is the GET /v1/jobs/{id}/trace body: the merged
// cross-node span tree of the job's trace.
type traceResponse struct {
	Schema  string                 `json:"schema"`
	TraceID string                 `json:"trace_id"`
	JobID   string                 `json:"job_id"`
	Nodes   []string               `json:"nodes"`
	Spans   []telemetry.SpanRecord `json:"spans"`
}

// handleTraceSegments serves this node's retained segments of one trace,
// raw and unmerged. Peers answering a trace query pull this endpoint.
func (s *Service) handleTraceSegments(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	writeJSON(w, http.StatusOK, traceSegmentsResponse{
		TraceID:  id,
		Node:     s.node,
		Segments: s.traces.ByTrace(id),
	})
}

// handleJobTrace serves the merged cross-node span tree of a job's trace:
// the job is resolved to its trace ID locally, the peers' segments are
// pulled concurrently, and every span is merged into one tree sorted by
// start time. A node that only forwarded the job (its segment is the
// ingress span) resolves the job ID through its trace ring even though
// the job itself lives on the owning peer.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var traceID string
	if j, ok := s.Job(id); ok {
		traceID = s.Snapshot(j).TraceID
	} else if seg, ok := s.traces.ByJob(id); ok {
		traceID = seg.TraceID
	}
	if traceID == "" {
		writeError(w, http.StatusNotFound, "unknown_job", "no such job")
		return
	}

	segments := s.traces.ByTrace(traceID)
	segments = append(segments, s.pullPeerSegments(r.Context(), traceID)...)

	resp := traceResponse{Schema: TraceSchemaV1, TraceID: traceID, JobID: id}
	nodeSet := map[string]bool{}
	for _, seg := range segments {
		for _, sp := range seg.Spans {
			resp.Spans = append(resp.Spans, sp)
			if sp.Node != "" {
				nodeSet[sp.Node] = true
			}
		}
	}
	for n := range nodeSet {
		resp.Nodes = append(resp.Nodes, n)
	}
	sort.Strings(resp.Nodes)
	sort.Slice(resp.Spans, func(i, j int) bool {
		a, b := resp.Spans[i], resp.Spans[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.SpanID < b.SpanID
	})
	writeJSON(w, http.StatusOK, resp)
}

// pullPeerSegments fetches the peers' retained segments of traceID,
// concurrently and best-effort: an unreachable peer costs its counter
// bump and a log line, not the query.
func (s *Service) pullPeerSegments(ctx context.Context, traceID string) []telemetry.JobTrace {
	if s.cluster == nil {
		return nil
	}
	var peers []string
	for _, node := range s.cluster.ring.nodes {
		if node != s.cluster.self {
			peers = append(peers, node)
		}
	}
	results := make([][]telemetry.JobTrace, len(peers))
	var wg sync.WaitGroup
	for i, node := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			segs, err := pullSegments(ctx, node, traceID)
			s.reg.Counter(MetricTracePulls).Inc()
			if err != nil {
				s.reg.Counter(MetricTracePullErrors).Inc()
				s.log.Warn("trace pull failed", "trace_id", traceID, "peer", node, "error", err)
				return
			}
			results[i] = segs
		}()
	}
	wg.Wait()
	var out []telemetry.JobTrace
	for _, segs := range results {
		out = append(out, segs...)
	}
	return out
}

// pullSegments fetches one peer's segments of one trace.
func pullSegments(ctx context.Context, node, traceID string) ([]telemetry.JobTrace, error) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/traces/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := probeClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc traceSegmentsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Segments, nil
}
