package service

// Tests of the redesigned submit body: the source union, the activity
// block, and the 422 error envelopes the consolidated validator produces
// for every invalid combination — through the real HTTP handler, so what
// is pinned here is the wire behavior, not just the validator.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro"
	"repro/internal/store"
)

// s27Verilog is the s27 test circuit as structural Verilog, with the same
// primary-input names as s27Bench so activity profiles apply to both.
const s27Verilog = `module s27v (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;
  dff d1 (G5, G10);
  dff d2 (G6, G11);
  dff d3 (G7, G13);
  not n1 (G14, G0);
  not n2 (G17, G11);
  and a1 (G8, G14, G6);
  or o1 (G15, G12, G8);
  or o2 (G16, G3, G8);
  nand na1 (G9, G16, G15);
  nor no1 (G10, G14, G11);
  nor no2 (G11, G5, G9);
  nor no3 (G12, G1, G7);
  nor no4 (G13, G2, G12);
endmodule
`

// s27VCD toggles G0 on every cycle and G2 once; G1/G3 never change.
const s27VCD = "$timescale 1ns $end\n" +
	"$var wire 1 ! G0 $end\n" +
	"$var wire 1 \" G1 $end\n" +
	"$var wire 1 # G2 $end\n" +
	"$enddefinitions $end\n" +
	"#0\n0!\n0\"\n0#\n" +
	"#1\n1!\n" +
	"#2\n0!\n1#\n" +
	"#3\n1!\n" +
	"#4\n0!\n"

// TestSubmitUnionValidationEnvelopes drives every invalid source-union and
// activity combination through POST /v1/jobs and checks the status and
// error-envelope code of each.
func TestSubmitUnionValidationEnvelopes(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 2})

	cases := []struct {
		name   string
		body   map[string]any
		status int
		code   string
	}{
		{"empty union", map[string]any{"source": map[string]any{}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"two discriminants", map[string]any{
			"source": map[string]any{"circuit": "s344", "bench": s27Bench}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"three discriminants", map[string]any{
			"source": map[string]any{"circuit": "s344", "bench": s27Bench, "verilog": s27Verilog}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"name on builtin", map[string]any{
			"source": map[string]any{"circuit": "s344", "name": "x"}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"union plus legacy circuit", map[string]any{
			"circuit": "s344", "source": map[string]any{"circuit": "s344"}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"union plus legacy bench", map[string]any{
			"bench": s27Bench, "source": map[string]any{"circuit": "s344"}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"union plus legacy name", map[string]any{
			"name": "x", "source": map[string]any{"bench": s27Bench}},
			http.StatusUnprocessableEntity, "bad_source"},
		{"bad verilog", map[string]any{
			"source": map[string]any{"verilog": "module m (a, y);\n input a;\n output y;\n frobnicate u1 (y, a);\nendmodule\n"}},
			http.StatusUnprocessableEntity, "bad_verilog"},
		{"empty activity", map[string]any{
			"source": map[string]any{"circuit": "s344"}, "activity": map[string]any{}},
			http.StatusUnprocessableEntity, "bad_activity"},
		{"vcd plus factors", map[string]any{
			"source":   map[string]any{"circuit": "s344"},
			"activity": map[string]any{"vcd": s27VCD, "default_input": 0.2}},
			http.StatusUnprocessableEntity, "bad_activity"},
		{"factor out of range", map[string]any{
			"source":   map[string]any{"circuit": "s344"},
			"activity": map[string]any{"inputs": map[string]any{"PI0": 1.5}}},
			http.StatusUnprocessableEntity, "bad_activity"},
		{"unknown activity input", map[string]any{
			"source":   map[string]any{"circuit": "s344"},
			"activity": map[string]any{"inputs": map[string]any{"nope": 0.5}}},
			http.StatusUnprocessableEntity, "bad_activity"},
		{"vcd naming no input", map[string]any{
			"source":   map[string]any{"circuit": "s344"},
			"activity": map[string]any{"vcd": "$var wire 1 ! other $end\n$enddefinitions $end\n#0\n0!\n#1\n"}},
			http.StatusUnprocessableEntity, "bad_activity"},
		{"garbage vcd", map[string]any{
			"source":   map[string]any{"circuit": "s344"},
			"activity": map[string]any{"vcd": "not a vcd"}},
			http.StatusUnprocessableEntity, "bad_activity"},
		// Legacy error bytes must survive the redesign untouched.
		{"legacy both set", map[string]any{"circuit": "s344", "bench": s27Bench},
			http.StatusBadRequest, "bad_request"},
		{"legacy neither set", map[string]any{},
			http.StatusBadRequest, "bad_request"},
		{"unknown union benchmark", map[string]any{
			"source": map[string]any{"circuit": "sXXX"}},
			http.StatusNotFound, "unknown_benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postJob(t, srv.URL, tc.body)
			if code != tc.status {
				t.Fatalf("status %d, want %d (%v)", code, tc.status, body)
			}
			if got := errCode(t, body); got != tc.code {
				t.Errorf("code %q, want %q (%v)", got, tc.code, body)
			}
		})
	}
}

// fetchResult retrieves and decodes a done job's result document.
func fetchResult(t *testing.T, base, resultURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + resultURL)
	if err != nil {
		t.Fatalf("GET %s: %v", resultURL, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d (%s)", resultURL, resp.StatusCode, raw)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return doc
}

// waitSubmit runs one wait-mode submit to completion and returns the
// result document.
func waitSubmit(t *testing.T, base string, body map[string]any) map[string]any {
	t.Helper()
	body["wait"] = true
	code, _, resp := postJob(t, base, body)
	if code != http.StatusOK {
		t.Fatalf("wait submit: status %d (%v)", code, resp)
	}
	if st := resp["state"]; st != "done" {
		t.Fatalf("job settled in state %v (err %v)", st, resp["error"])
	}
	u, _ := resp["result_url"].(string)
	return fetchResult(t, base, u)
}

// TestVerilogActivityJob runs a Verilog submit with an explicit activity
// profile end to end and checks the weighted columns appear — and that
// the same circuit without activity keeps the pre-activity document
// shape.
func TestVerilogActivityJob(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 4})

	doc := waitSubmit(t, srv.URL, map[string]any{
		"source": map[string]any{"verilog": s27Verilog},
		"activity": map[string]any{
			"default_input": 0.1,
			"inputs":        map[string]any{"G0": 0.9},
		},
	})
	act, ok := doc["activity"].(map[string]any)
	if !ok {
		t.Fatalf("result has no activity block: %v", doc)
	}
	if act["source"] != "profile" {
		t.Errorf("activity.source = %v, want profile", act["source"])
	}
	if act["default_input"] != 0.1 {
		t.Errorf("activity.default_input = %v, want 0.1", act["default_input"])
	}
	for _, key := range []string{"wtm_total", "wtm_per_pattern",
		"traditional_weighted_per_hz", "input_control_weighted_per_hz",
		"proposed_weighted_per_hz"} {
		v, ok := act[key].(float64)
		if !ok || v < 0 {
			t.Errorf("activity.%s = %v, want a non-negative number", key, act[key])
		}
	}
	if w, _ := act["traditional_weighted_per_hz"].(float64); w <= 0 {
		t.Errorf("traditional weighted dynamic should be positive, got %v", w)
	}
	// The module statement's own name labels the circuit.
	if doc["circuit"] != "s27v" {
		t.Errorf("circuit = %v, want s27v", doc["circuit"])
	}

	// Same circuit, no activity: the document must not grow the key.
	plain := waitSubmit(t, srv.URL, map[string]any{
		"source": map[string]any{"verilog": s27Verilog},
	})
	if _, ok := plain["activity"]; ok {
		t.Fatalf("plain job leaked an activity block: %v", plain)
	}
	// The simulated columns are activity-independent.
	if !reflect.DeepEqual(plain["traditional"], doc["traditional"]) {
		t.Errorf("activity changed the simulated traditional report:\n%v\nvs\n%v",
			plain["traditional"], doc["traditional"])
	}
}

// TestVCDActivityJob extracts the activity profile from a VCD and checks
// the per-input toggle rates land in the result document.
func TestVCDActivityJob(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 2})

	doc := waitSubmit(t, srv.URL, map[string]any{
		"bench":    s27Bench,
		"name":     "s27",
		"activity": map[string]any{"vcd": s27VCD},
	})
	act, ok := doc["activity"].(map[string]any)
	if !ok {
		t.Fatalf("result has no activity block: %v", doc)
	}
	if act["source"] != "vcd" {
		t.Errorf("activity.source = %v, want vcd", act["source"])
	}
	inputs, _ := act["inputs"].(map[string]any)
	// G0 toggles every step (4/4), G2 once (1/4); G1 is constant.
	if inputs["G0"] != 1.0 {
		t.Errorf("G0 activity = %v, want 1", inputs["G0"])
	}
	if inputs["G2"] != 0.25 {
		t.Errorf("G2 activity = %v, want 0.25", inputs["G2"])
	}
	if inputs["G1"] != 0.0 {
		t.Errorf("G1 activity = %v, want 0", inputs["G1"])
	}
}

// TestActivityCoalescingAndStoreKey checks that the activity hash splits
// both the coalescing key and the store key: identically annotated
// submits coalesce, differently annotated ones do not, and each
// annotation gets its own persistent entry.
func TestActivityCoalescingAndStoreKey(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{WireSchema: scanpower.ComparisonSchemaV1})
	if err != nil {
		t.Fatal(err)
	}
	svc, srv := newTestServer(t, Options{Workers: 1, QueueSize: 8, Store: st})

	withAct := map[string]any{
		"bench": s27Bench, "name": "s27",
		"activity": map[string]any{"inputs": map[string]any{"G0": 0.9}},
	}
	first := waitSubmit(t, srv.URL, withAct)

	// Identical resubmit: served from the coalescing map (the done job
	// stays keyed) — and the documents match.
	code, _, resp := postJob(t, srv.URL, map[string]any{
		"bench": s27Bench, "name": "s27",
		"activity": map[string]any{"inputs": map[string]any{"G0": 0.9}},
	})
	if code != http.StatusOK || resp["coalesced"] != true {
		t.Fatalf("identical annotated resubmit did not coalesce: %d %v", code, resp)
	}

	// Different activity: a different job and a different result.
	other := waitSubmit(t, srv.URL, map[string]any{
		"bench": s27Bench, "name": "s27",
		"activity": map[string]any{"inputs": map[string]any{"G0": 0.1}},
	})
	a1, _ := first["activity"].(map[string]any)
	a2, _ := other["activity"].(map[string]any)
	if reflect.DeepEqual(a1["inputs"], a2["inputs"]) {
		t.Fatalf("different activity profiles produced identical blocks: %v", a1)
	}

	// No activity at all: a third distinct entry.
	waitSubmit(t, srv.URL, map[string]any{"bench": s27Bench, "name": "s27"})

	if got := svc.store.Len(); got != 3 {
		t.Fatalf("store holds %d entries, want 3 (two annotated + one plain)", got)
	}
}

// TestLegacySubmitBytesUnchanged pins the byte-level response of a legacy
// flat submit: the union and activity machinery must be invisible to it.
func TestLegacySubmitBytesUnchanged(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueSize: 2})

	raw := []byte(`{"bench":` + string(mustJSON(t, s27Bench)) + `,"name":"s27","wait":true}`)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["state"] != "done" {
		t.Fatalf("legacy submit settled in %v", body["state"])
	}
	u, _ := body["result_url"].(string)
	doc := fetchResult(t, srv.URL, u)
	for _, forbidden := range []string{"activity"} {
		if _, ok := doc[forbidden]; ok {
			t.Errorf("legacy result grew a %q key: %v", forbidden, doc)
		}
	}
	if doc["schema"] != scanpower.ComparisonSchemaV1 {
		t.Errorf("schema = %v, want %v", doc["schema"], scanpower.ComparisonSchemaV1)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
