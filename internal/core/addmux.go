package core

import (
	"repro/internal/netlist"
	"repro/internal/timing"
)

// AddMUX implements the paper's first step:
//
//  1. Find delay of critical path(s) of the circuit
//  2. For each pseudo-input: add a multiplexer; if the critical path
//     delay changed, remove it.
//
// It returns, per flop, whether its output may carry a scan-mode MUX
// without lengthening the critical path, together with the timing
// analysis it used. The per-flop checks are independent because a MUX at
// one pseudo-input lengthens only the paths leaving that pseudo-input
// (the slack-based equivalence is unit-tested against literal
// re-insertion in internal/timing).
func AddMUX(c *netlist.Circuit, model timing.DelayModel) ([]bool, *timing.Analysis) {
	a := timing.Analyze(c, model)
	muxable := make([]bool, c.NumFFs())
	for fi, ff := range c.FFs {
		muxable[fi] = !a.WouldMuxChangeCritical(ff.Q)
	}
	return muxable, a
}

// AddMUXLiteral is the paper's procedure taken literally: for each
// pseudo-input, physically insert the multiplexer, re-run the timing
// analysis on the materialized netlist, and remove the MUX again if the
// critical path delay changed. It is O(flops × STA) where AddMUX is one
// STA pass; the two are proven equivalent by tests, and AddMUX is what
// the flow uses.
func AddMUXLiteral(c *netlist.Circuit, model timing.DelayModel) ([]bool, error) {
	base := timing.Analyze(c, model).Critical
	muxable := make([]bool, c.NumFFs())
	for fi := range c.FFs {
		single := make([]bool, c.NumFFs())
		single[fi] = true
		dft, err := InsertMuxes(c, single, make([]bool, c.NumFFs()))
		if err != nil {
			return nil, err
		}
		after := timing.Analyze(dft, model).Critical
		muxable[fi] = after <= base+1e-9
	}
	return muxable, nil
}
