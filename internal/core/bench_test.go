package core

import (
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// fillBenchFinder builds a finder over s1423 with every pseudo-input
// multiplexed and nothing assigned, so the fill kernels see the largest
// candidate space the circuit offers (all 91 controlled inputs
// don't-care).
func fillBenchFinder(b *testing.B) (*finder, []netlist.NetID, *Options) {
	p, ok := iscas.ByName("s1423")
	if !ok {
		b.Fatal("no s1423 profile")
	}
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	opts := ProposedOptions()
	muxable := make([]bool, c.NumFFs())
	for i := range muxable {
		muxable[i] = true
	}
	f := newFinder(c, &opts, muxable, nil, rand.New(rand.NewSource(1)))
	f.imply()
	var unassigned []netlist.NetID
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] == logic.X {
			unassigned = append(unassigned, n)
		}
	}
	return f, unassigned, &opts
}

// BenchmarkFillKernels compares the scalar and 64-way packed
// minimum-leakage fill kernels on s1423 at the flow's default trial
// count. Feeds `make bench-mc`.
func BenchmarkFillKernels(b *testing.B) {
	f, unassigned, opts := fillBenchFinder(b)
	trials := opts.FillTrials
	reset := func() {
		f.rng = rand.New(rand.NewSource(1))
		for _, n := range unassigned {
			f.assign[n] = logic.X
		}
	}
	b.Run("scalar/s1423/t256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reset()
			f.fillScalar(unassigned, trials)
		}
	})
	b.Run("packed/s1423/t256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reset()
			f.fillPacked(unassigned, trials)
		}
	})
}
