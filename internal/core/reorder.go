package core

import (
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// ReorderInputs permutes the inputs of symmetric gates (NAND, NOR, AND,
// OR — any permutation computes the same function) so that each gate sits
// in its cheapest leakage state under the scan-mode net values `state`
// (X entries are averaged). It mutates c in place and returns the number
// of gates whose input order changed.
//
// This is the paper's final refinement: "the leakage current of a NAND2
// gate is strongly different in 01 and 10 states, so changing the order
// of inputs … can further decrease the total leakage in scan mode."
func ReorderInputs(c *netlist.Circuit, state []logic.Value, lm *leakage.Model) int {
	changed := 0
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Type {
		case logic.Nand, logic.Nor, logic.And, logic.Or:
		default:
			continue // not symmetric (or order-insensitive anyway)
		}
		n := len(g.Inputs)
		if n < 2 || n > 4 {
			continue
		}
		vals := make([]logic.Value, n)
		for i, in := range g.Inputs {
			vals[i] = state[in]
		}
		bestPerm := identityPerm(n)
		bestLeak := lm.GateLeak(g.Type, vals)
		permute(n, func(perm []int) {
			pv := make([]logic.Value, n)
			for i, p := range perm {
				pv[i] = vals[p]
			}
			if l := lm.GateLeak(g.Type, pv); l < bestLeak-1e-12 {
				bestLeak = l
				copy(bestPerm, perm)
			}
		})
		if !isIdentity(bestPerm) {
			ni := make([]netlist.NetID, n)
			for i, p := range bestPerm {
				ni[i] = g.Inputs[p]
			}
			copy(g.Inputs, ni)
			changed++
		}
	}
	// Pin swapping never changes which nets feed which gates, so the
	// frozen fanout/topology bookkeeping stays valid.
	return changed
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func isIdentity(p []int) bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// permute calls fn with every permutation of 0..n-1 (Heap's algorithm).
func permute(n int, fn func([]int)) {
	p := identityPerm(n)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	rec(n)
}
