package core

import (
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// This file preserves the pre-refactor 64-lane minimum-leakage fill as
// the baseline for `make bench-wide`: the dual-rail topo-walk evaluator
// (the old sim.Packed3), per-lane shift extraction for the X-averaged
// leakage (the old leakage.AccumLeak3Packed), per-call slice allocation,
// and a worker pool spawned per call. The shipping kernel runs the
// compiled program at 256 lanes with pooled scratch.

// legacyEvalNets3 is the pre-refactor sim.Packed3.EvalNets: dual-rail
// three-valued evaluation over a topological net walk.
func legacyEvalNets3(c *netlist.Circuit, v, x []uint64) {
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var ov, ox uint64
		switch g.Type {
		case logic.Buf:
			ov, ox = v[ins[0]], x[ins[0]]
		case logic.Not:
			ox = x[ins[0]]
			ov = ^v[ins[0]] &^ ox
		case logic.And, logic.Nand:
			one := v[ins[0]]
			zero := ^x[ins[0]] &^ v[ins[0]]
			for _, in := range ins[1:] {
				one &= v[in]
				zero |= ^x[in] &^ v[in]
			}
			if g.Type == logic.And {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case logic.Or, logic.Nor:
			one := v[ins[0]]
			zero := ^x[ins[0]] &^ v[ins[0]]
			for _, in := range ins[1:] {
				one |= v[in]
				zero &= ^x[in] &^ v[in]
			}
			if g.Type == logic.Or {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case logic.Xor, logic.Xnor:
			known := ^x[ins[0]]
			s := v[ins[0]]
			for _, in := range ins[1:] {
				known &= ^x[in]
				s ^= v[in]
			}
			if g.Type == logic.Xor {
				ov = s & known
			} else {
				ov = ^s & known
			}
			ox = ^known
		case logic.Mux2:
			d0v, d0x := v[ins[0]], x[ins[0]]
			d1v, d1x := v[ins[1]], x[ins[1]]
			sv, sx := v[ins[2]], x[ins[2]]
			m1 := ^sx & sv
			m0 := ^sx &^ sv
			agree := ^d0x & ^d1x &^ (d0v ^ d1v)
			ov = m1&d1v | m0&d0v | sx&agree&d0v
			ox = m1&d1x | m0&d0x | sx&^agree
		default:
			panic("legacy EvalNets3 on unknown gate type " + g.Type.String())
		}
		v[g.Output] = ov
		x[g.Output] = ox
	}
}

// legacyAccumLeak3 is the pre-refactor leakage.AccumLeak3Packed.
func legacyAccumLeak3(c *netlist.Circuit, v, x []uint64, n int, tabs3 [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs3[gi]
		switch len(g.Inputs) {
		case 1:
			av := v[g.Inputs[0]]
			ax := x[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[ax&1<<1|av&1]
				av >>= 1
				ax >>= 1
			}
		case 2:
			av, ax := v[g.Inputs[0]], x[g.Inputs[0]]
			bv, bx := v[g.Inputs[1]], x[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(ax&1|bx&1<<1)<<2|av&1|bv&1<<1]
				av >>= 1
				ax >>= 1
				bv >>= 1
				bx >>= 1
			}
		case 3:
			av, ax := v[g.Inputs[0]], x[g.Inputs[0]]
			bv, bx := v[g.Inputs[1]], x[g.Inputs[1]]
			dv, dx := v[g.Inputs[2]], x[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(ax&1|bx&1<<1|dx&1<<2)<<3|av&1|bv&1<<1|dv&1<<2]
				av >>= 1
				ax >>= 1
				bv >>= 1
				bx >>= 1
				dv >>= 1
				dx >>= 1
			}
		default:
			k := uint(len(g.Inputs))
			for t := 0; t < n; t++ {
				idx, xmask := 0, 0
				for i, in := range g.Inputs {
					idx |= int(v[in]>>uint(t)&1) << uint(i)
					xmask |= int(x[in]>>uint(t)&1) << uint(i)
				}
				cyc[t] += tab[xmask<<k|idx]
			}
		}
	}
}

// legacyFillPacked is the pre-refactor finder.fillPacked, verbatim except
// for using the preserved local evaluator and accumulator: 64-trial
// words, per-call cyc allocation, per-call goroutine spawn.
func legacyFillPacked(f *finder, unassigned []netlist.NetID, trials int) []logic.Value {
	best := make([]logic.Value, len(unassigned))
	if f.cancelled() {
		return best
	}
	c := f.c
	lm := f.opts.Leak
	tabs3 := lm.CircuitTables3(c)
	nNets := c.NumNets()
	nWords := (trials + sim.PackedLanes - 1) / sim.PackedLanes

	cand := make([]uint64, len(unassigned)*nWords)
	for trial := 0; trial < trials; trial++ {
		w := trial / sim.PackedLanes
		bit := uint64(1) << uint(trial%sim.PackedLanes)
		for i, n := range unassigned {
			var one bool
			if trial == 0 && f.ob != nil {
				one = f.ob.PreferredValue(n)
			} else {
				one = f.rng.Intn(2) == 1
			}
			if one {
				cand[i*nWords+w] |= bit
			}
		}
	}

	baseV := make([]uint64, nNets)
	baseX := make([]uint64, nNets)
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] != logic.X {
			if f.assign[n] == logic.One {
				baseV[n] = ^uint64(0)
			}
		} else {
			baseX[n] = ^uint64(0)
		}
	}

	if f.cancelled() {
		return best
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nWords {
		workers = nWords
	}
	cycs := make([][]float64, nWords)
	lanes := make([]int, nWords)
	elapsed := make([]time.Duration, nWords)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := make([]uint64, nNets)
			x := make([]uint64, nNets)
			for wi := range next {
				n := trials - wi*sim.PackedLanes
				if n > sim.PackedLanes {
					n = sim.PackedLanes
				}
				t0 := time.Now()
				copy(v, baseV)
				copy(x, baseX)
				for i, net := range unassigned {
					v[net] = cand[i*nWords+wi]
					x[net] = 0
				}
				legacyEvalNets3(c, v, x)
				cyc := make([]float64, sim.PackedLanes)
				legacyAccumLeak3(c, v, x, n, tabs3, cyc)
				cycs[wi] = cyc
				lanes[wi] = n
				elapsed[wi] = time.Since(t0)
			}
		}()
	}
	for wi := 0; wi < nWords; wi++ {
		next <- wi
	}
	close(next)
	wg.Wait()

	bestLeak := 0.0
	bestTrial := 0
	mcb := f.opts.Observe.OnMCBatch
	for wi := 0; wi < nWords; wi++ {
		cyc := cycs[wi]
		for t := 0; t < lanes[wi]; t++ {
			trial := wi*sim.PackedLanes + t
			if trial == 0 || cyc[t] < bestLeak {
				bestLeak = cyc[t]
				bestTrial = trial
			}
		}
		if mcb != nil {
			mcb("fill", lanes[wi], elapsed[wi])
		}
	}
	for i := range unassigned {
		w := cand[i*nWords+bestTrial/sim.PackedLanes]
		best[i] = logic.FromBool(w>>uint(bestTrial%sim.PackedLanes)&1 == 1)
	}
	return best
}

// wideFillFinder is fillBenchFinder for any profiling circuit and either
// test or benchmark context.
func wideFillFinder(t testing.TB, name string) (*finder, []netlist.NetID, *Options) {
	p, ok := iscas.ByName(name)
	if !ok {
		t.Fatalf("no ISCAS profile %q", name)
	}
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := ProposedOptions()
	muxable := make([]bool, c.NumFFs())
	for i := range muxable {
		muxable[i] = true
	}
	f := newFinder(c, &opts, muxable, nil, rand.New(rand.NewSource(1)))
	f.imply()
	var unassigned []netlist.NetID
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] == logic.X {
			unassigned = append(unassigned, n)
		}
	}
	return f, unassigned, &opts
}

// TestBenchWideFillJSON times the minimum-leakage fill — preserved legacy
// 64-lane baseline vs the compiled evaluator at 64 and 256 lanes — and
// merges fill/<circuit> entries into the bench-wide report. `make
// bench-wide` runs it; without WIDE_BENCH_OUT it is skipped.
func TestBenchWideFillJSON(t *testing.T) {
	out := os.Getenv("WIDE_BENCH_OUT")
	if out == "" {
		t.Skip("set WIDE_BENCH_OUT to run the wide-kernel fill benchmark")
	}
	const rounds = 5
	entries := map[string]benchjson.Entry{}
	for _, name := range []string{"s1423", "s5378"} {
		f, unassigned, opts := wideFillFinder(t, name)
		trials := opts.FillTrials
		reset := func(lanes int) {
			f.rng = rand.New(rand.NewSource(1))
			f.opts.Lanes = lanes
			for _, n := range unassigned {
				f.assign[n] = logic.X
			}
		}
		run := func(lanes int) []logic.Value {
			reset(lanes)
			if lanes == 0 {
				return legacyFillPacked(f, unassigned, trials)
			}
			return f.fillPacked(unassigned, trials)
		}

		legacyBest, new64, new256 := run(0), run(64), run(256)
		if !reflect.DeepEqual(legacyBest, new64) {
			t.Fatalf("%s: legacy vs new64 fill differs", name)
		}
		if !reflect.DeepEqual(legacyBest, new256) {
			t.Fatalf("%s: legacy vs new256 fill differs", name)
		}

		legacyMS := benchjson.MinMS(rounds, func() { run(0) })
		new64MS := benchjson.MinMS(rounds, func() { run(64) })
		new256MS := benchjson.MinMS(rounds, func() { run(256) })
		speedup := legacyMS / new256MS
		t.Logf("%s: legacy64 %.2fms, new64 %.2fms, new256 %.2fms (%.2fx)",
			name, legacyMS, new64MS, new256MS, speedup)
		entries["fill/"+name] = benchjson.Entry{
			Workload: "fillPacked, all pseudo-inputs don't-care, FillTrials trials, seed 1, best of 5",
			ResultsMS: map[string]float64{
				"legacy64": benchjson.Round2(legacyMS),
				"new64":    benchjson.Round2(new64MS),
				"new256":   benchjson.Round2(new256MS),
			},
			SpeedupVsLegacy64: benchjson.Round2(speedup),
			Criterion:         "new256 >= 1.5x over the pre-refactor 64-lane kernel",
			Met:               speedup >= 1.5,
		}
	}
	if err := benchjson.Merge(out, entries); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged fill entries into %s", out)
}
