package core

import (
	"testing"

	"repro/internal/netlist"
)

// TestFillPackedAllocsFlat guards the scratch reuse of the packed fill:
// once the pool is warm, the number of allocations per fillPacked call
// must not grow with the trial count — per-batch cost buffers and
// net-state words come from the pooled scratch. A regression that
// allocates per batch shows up as the large run allocating far more than
// the small one.
func TestFillPackedAllocsFlat(t *testing.T) {
	c := blockableCircuit()
	f := newTestFinder(t, c, nil)
	f.imply()
	var unassigned []netlist.NetID
	for _, n := range c.CombInputs() {
		if f.controlled[n] {
			unassigned = append(unassigned, n)
		}
	}
	if len(unassigned) == 0 {
		t.Fatal("test circuit has no controlled inputs to fill")
	}
	run := func(trials int) float64 {
		return testing.AllocsPerRun(3, func() {
			f.fillPacked(unassigned, trials)
		})
	}
	run(64) // warm the scratch pool
	small := run(256)
	large := run(4096)
	// Slack absorbs an occasional mid-measurement GC clearing the pool;
	// per-batch allocations would exceed it by an order of magnitude.
	if large > small+16 {
		t.Errorf("allocs grew with trials: %v at 256, %v at 4096", small, large)
	}
}
