package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/techmap"
	"repro/internal/timing"
)

const s27 = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// mappedS27 returns s27 mapped to the NAND/NOR/INV library.
func mappedS27(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	m, err := techmap.Map(c, techmap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAddMUXKeepsCriticalDelay(t *testing.T) {
	c := mappedS27(t)
	model := timing.Default()
	muxable, a := AddMUX(c, model)
	muxVal := make([]bool, c.NumFFs())
	dft, err := InsertMuxes(c, muxable, muxVal)
	if err != nil {
		t.Fatal(err)
	}
	after := timing.Analyze(dft, model)
	if after.Critical > a.Critical+1e-9 {
		t.Errorf("AddMUX selection changed critical delay: %v -> %v", a.Critical, after.Critical)
	}
}

func TestAddMUXIsMaximalUnderLiteralCheck(t *testing.T) {
	// Every rejected flop, if muxed anyway, must lengthen the critical
	// path (the rejection is never spurious).
	c := mappedS27(t)
	model := timing.Default()
	muxable, a := AddMUX(c, model)
	for fi, ok := range muxable {
		if ok {
			continue
		}
		single := make([]bool, c.NumFFs())
		single[fi] = true
		dft, err := InsertMuxes(c, single, make([]bool, c.NumFFs()))
		if err != nil {
			t.Fatal(err)
		}
		after := timing.Analyze(dft, model)
		if after.Critical <= a.Critical+1e-9 {
			t.Errorf("flop %d rejected but MUX is actually free (%v vs %v)",
				fi, after.Critical, a.Critical)
		}
	}
}

func TestInsertMuxesNormalModeEquivalence(t *testing.T) {
	c := mappedS27(t)
	muxable, _ := AddMUX(c, timing.Default())
	muxVal := make([]bool, c.NumFFs())
	for i := range muxVal {
		muxVal[i] = i%2 == 0
	}
	dft, err := InsertMuxes(c, muxable, muxVal)
	if err != nil {
		t.Fatal(err)
	}
	// With SE=0 the DFT netlist must behave exactly like the original.
	rng := rand.New(rand.NewSource(1))
	sa, sb := sim.New(c), sim.New(dft)
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	piB := make([]bool, len(dft.PIs))
	for trial := 0; trial < 300; trial++ {
		sim.RandomVector(rng, pi)
		sim.RandomVector(rng, ppi)
		for i := range piB {
			name := dft.Nets[dft.PIs[i]].Name
			switch name {
			case "SE":
				piB[i] = false
			case "TIE0":
				piB[i] = false
			case "TIE1":
				piB[i] = true
			default:
				id, _ := c.NetByName(name)
				for j, orig := range c.PIs {
					if orig == id {
						piB[i] = pi[j]
					}
				}
			}
		}
		stA := sa.Eval(pi, ppi)
		stB := sb.Eval(piB, ppi)
		for _, po := range c.POs {
			name := c.Nets[po].Name
			poB, ok := dft.NetByName(name)
			if !ok {
				t.Fatalf("PO %s missing in DFT netlist", name)
			}
			if stA[po] != stB[poB] {
				t.Fatalf("trial %d: PO %s differs in normal mode", trial, name)
			}
		}
		for fi := range c.FFs {
			if stA[c.FFs[fi].D] != stB[dft.FFs[fi].D] {
				t.Fatalf("trial %d: next state of flop %d differs", trial, fi)
			}
		}
	}
}

func TestInsertMuxesValidation(t *testing.T) {
	c := mappedS27(t)
	if _, err := InsertMuxes(c, []bool{true}, []bool{true}); err == nil {
		t.Error("accepted wrong-length mux flags")
	}
}

func TestBuildProposedS27(t *testing.T) {
	c := mappedS27(t)
	sol, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.MuxCount == 0 {
		t.Error("no pseudo-input was multiplexed on s27")
	}
	if err := sol.Cfg.Validate(sol.Circuit); err != nil {
		t.Fatalf("invalid shift config: %v", err)
	}
	// Every PI hold value must be binary after the fill.
	for i, v := range sol.Cfg.PIHold {
		if !v.IsBinary() {
			t.Errorf("PIHold[%d] = %v, want binary", i, v)
		}
	}
	if sol.Stats.ScanLeakNA <= 0 {
		t.Error("scan leakage must be positive")
	}
	if sol.BlockedShare() <= 0 {
		t.Error("no gate ended up quiet")
	}
}

// TestBlockingSoundness is the central correctness property: every net the
// flow declares transition-free must hold a constant value no matter what
// the non-multiplexed scan cells carry during shifting.
func TestBlockingSoundness(t *testing.T) {
	c := mappedS27(t)
	for _, opts := range []Options{ProposedOptions(), InputControlOptions()} {
		sol, err := Build(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		w := sol.Circuit
		s := sim.New(w)
		rng := rand.New(rand.NewSource(3))
		pi := make([]bool, len(w.PIs))
		ppi := make([]bool, w.NumFFs())
		for i, p := range w.PIs {
			pi[i] = sol.Cfg.PIHold[i] == logic.One
			_ = p
		}
		var ref []bool
		for trial := 0; trial < 200; trial++ {
			for f := 0; f < w.NumFFs(); f++ {
				if sol.Cfg.Muxed[f] {
					ppi[f] = sol.Cfg.MuxVal[f]
				} else {
					ppi[f] = rng.Intn(2) == 1
				}
			}
			st := s.Eval(pi, ppi)
			if trial == 0 {
				ref = append([]bool(nil), st...)
				continue
			}
			for n := range st {
				if sol.Trans[n] {
					continue
				}
				if st[n] != ref[n] {
					t.Fatalf("opts mux=%v: net %s declared quiet but toggled",
						opts.UseMux, w.Nets[n].Name)
				}
				if sol.Val[n].IsBinary() && st[n] != sol.Val[n].Bool() {
					t.Fatalf("net %s: implied %v but simulates %v",
						w.Nets[n].Name, sol.Val[n], st[n])
				}
			}
		}
	}
}

// TestProposedBeatsTraditionalOnPower wires the whole measurement path:
// proposed must cut dynamic power and not increase static power.
func TestProposedBeatsTraditionalOnPower(t *testing.T) {
	c := mappedS27(t)
	sol, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	lm := leakage.Default()
	cm := power.DefaultCapModel()
	rng := rand.New(rand.NewSource(5))
	var pats []scan.Pattern
	for i := 0; i < 20; i++ {
		p := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
		sim.RandomVector(rng, p.PI)
		sim.RandomVector(rng, p.State)
		pats = append(pats, p)
	}
	chT := scan.New(c)
	trad, err := power.MeasureScan(chT, pats, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	chP := scan.New(sol.Circuit)
	prop, err := power.MeasureScan(chP, pats, sol.Cfg, lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	if prop.DynamicPerHz >= trad.DynamicPerHz {
		t.Errorf("proposed dynamic %v >= traditional %v", prop.DynamicPerHz, trad.DynamicPerHz)
	}
	if prop.StaticUW > trad.StaticUW*1.02 {
		t.Errorf("proposed static %v clearly above traditional %v", prop.StaticUW, trad.StaticUW)
	}
}

func TestInputControlBaselineShape(t *testing.T) {
	c := mappedS27(t)
	sol, err := Build(c, InputControlOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.MuxCount != 0 || sol.Cfg.MuxCount() != 0 {
		t.Error("input-control baseline must not insert MUXes")
	}
	if sol.Stats.ReorderedGates != 0 {
		t.Error("input-control baseline must not reorder")
	}
	for _, v := range sol.Cfg.PIHold {
		if !v.IsBinary() {
			t.Error("baseline PI hold values must be binary")
		}
	}
}

func TestReorderInputsPreservesFunction(t *testing.T) {
	c := mappedS27(t)
	clone := c.Clone()
	clone.MustFreeze()
	state := make([]logic.Value, clone.NumNets())
	rng := rand.New(rand.NewSource(7))
	for i := range state {
		state[i] = logic.Value(rng.Intn(3))
	}
	lm := leakage.Default()
	before := lm.CircuitLeak(clone, state)
	changed := ReorderInputs(clone, state, lm)
	after := lm.CircuitLeak(clone, state)
	if after > before+1e-9 {
		t.Errorf("reordering increased leakage: %v -> %v", before, after)
	}
	if changed > 0 {
		if err := sim.Equivalent(c, clone, 500, rng); err != nil {
			t.Fatalf("reordering changed function: %v", err)
		}
	}
}

func TestReorderInputsFindsKnownWin(t *testing.T) {
	// NAND2 with state (1,0) leaks 264; swapping to (0,1) leaks 73.
	c := netlist.New("swap")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "o", "a", "b")
	c.MarkPO("o")
	c.MustFreeze()
	aID, _ := c.NetByName("a")
	bID, _ := c.NetByName("b")
	state := make([]logic.Value, c.NumNets())
	state[aID], state[bID] = logic.One, logic.Zero
	lm := leakage.Default()
	if n := ReorderInputs(c, state, lm); n != 1 {
		t.Fatalf("ReorderInputs changed %d gates, want 1", n)
	}
	if c.Gates[0].Inputs[0] != bID || c.Gates[0].Inputs[1] != aID {
		t.Error("inputs not swapped into the cheap order")
	}
	// Second call is a no-op (already optimal).
	if n := ReorderInputs(c, state, lm); n != 0 {
		t.Errorf("reorder not idempotent: changed %d more gates", n)
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := mappedS27(t)
	a, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment differs at net %d across identical runs", i)
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	c := netlist.New("uf")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	if _, err := Build(c, ProposedOptions()); err == nil {
		t.Error("accepted unfrozen circuit")
	}
	c.MustFreeze()
	opts := ProposedOptions()
	opts.Leak = nil
	if _, err := Build(c, opts); err == nil {
		t.Error("accepted nil leakage model")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	c := mappedS27(t)
	orig := bench.Canonical(c)
	if _, err := Build(c, ProposedOptions()); err != nil {
		t.Fatal(err)
	}
	if bench.Canonical(c) != orig {
		t.Error("Build mutated its input circuit")
	}
}

func TestMuxScanLeakNA(t *testing.T) {
	c := mappedS27(t)
	sol, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	lm := leakage.Default()
	if sol.Stats.MuxCount > 0 && sol.MuxScanLeakNA(lm) <= 0 {
		t.Error("mux overhead leak should be positive when muxes exist")
	}
	none, err := Build(c, InputControlOptions())
	if err != nil {
		t.Fatal(err)
	}
	if none.MuxScanLeakNA(lm) != 0 {
		t.Error("baseline has mux leak")
	}
}

// TestAddMUXLiteralAgreesWithFast proves the slack-based AddMUX equals
// the paper's literal insert/re-analyze/remove procedure on every
// benchmark profile small enough to afford the literal loop.
func TestAddMUXLiteralAgreesWithFast(t *testing.T) {
	model := timing.Default()
	for _, name := range []string{"s344", "s382", "s510", "s641"} {
		p, ok := iscas.ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, _ := AddMUX(c, model)
		lit, err := AddMUXLiteral(c, model)
		if err != nil {
			t.Fatal(err)
		}
		for fi := range fast {
			if fast[fi] != lit[fi] {
				t.Errorf("%s flop %d: fast=%v literal=%v", name, fi, fast[fi], lit[fi])
			}
		}
	}
}
