package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// solutionsIdentical returns "" when two solutions agree bit for bit on
// every externally visible field, else the first differing field. The MC
// backends promise bit-identity, so no tolerance is applied anywhere.
func solutionsIdentical(a, b *Solution) string {
	if a.Stats != b.Stats {
		return "Stats"
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			return "Assign"
		}
		if a.Val[i] != b.Val[i] {
			return "Val"
		}
		if a.Trans[i] != b.Trans[i] {
			return "Trans"
		}
	}
	for i := range a.Cfg.PIHold {
		if a.Cfg.PIHold[i] != b.Cfg.PIHold[i] {
			return "Cfg.PIHold"
		}
	}
	for i := range a.Cfg.Muxed {
		if a.Cfg.Muxed[i] != b.Cfg.Muxed[i] || a.Cfg.MuxVal[i] != b.Cfg.MuxVal[i] {
			return "Cfg.Mux"
		}
	}
	return ""
}

// TestMCPackedBuildEquivalence: the packed Monte-Carlo backend must
// reproduce the scalar backend's full flow output — assignment, implied
// state, Table-I-feeding stats, shift config — on real circuits, for both
// the proposed flow and the input-control baseline.
func TestMCPackedBuildEquivalence(t *testing.T) {
	p, _ := iscas.ByName("s344")
	gen, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	circuits := map[string]*netlist.Circuit{"s27": mappedS27(t), "s344": gen}
	for name, c := range circuits {
		for _, mk := range []func() Options{ProposedOptions, InputControlOptions} {
			scalarOpts := mk()
			scalarOpts.MC = MCScalar
			ref, err := Build(c, scalarOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, lanes := range sim.LaneWidths() {
				packedOpts := mk()
				packedOpts.MC = MCPacked
				packedOpts.Lanes = lanes
				got, err := Build(c, packedOpts)
				if err != nil {
					t.Fatal(err)
				}
				if field := solutionsIdentical(ref, got); field != "" {
					t.Errorf("%s UseMux=%v lanes=%d: %s differs between scalar and packed backends",
						name, scalarOpts.UseMux, lanes, field)
				}
			}
		}
	}
}

func TestMCBackendValidation(t *testing.T) {
	c := mappedS27(t)
	opts := ProposedOptions()
	opts.MC = "vectorized" // not a backend
	if _, err := Build(c, opts); err == nil {
		t.Fatal("Build accepted an unknown MC backend")
	}
	opts = ProposedOptions()
	opts.Lanes = 128 // not a supported lane width
	if _, err := Build(c, opts); err == nil {
		t.Fatal("Build accepted an unsupported lane width")
	}
}

// TestBuildObsDeadline: a context cancelled while the observability
// estimate is running must abort the whole flow with the context's error
// — for both backends.
func TestBuildObsDeadline(t *testing.T) {
	c := mappedS27(t)
	for _, backend := range []MCBackend{MCScalar, MCPacked} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := ProposedOptions()
		opts.MC = backend
		opts.ObsSamples = 1 << 20
		opts.Observe.OnObsSamples = func(int) { cancel() }
		sol, err := BuildContext(ctx, c, opts)
		if err != context.Canceled {
			t.Errorf("%q: BuildContext = (%v, %v), want context.Canceled", backend, sol, err)
		}
	}
}

// TestMCBatchTelemetry: with the packed backend every Monte-Carlo batch
// must surface through Observer.OnMCBatch, with lane totals accounting
// for every observability vector and every fill trial exactly once.
func TestMCBatchTelemetry(t *testing.T) {
	c := mappedS27(t)
	opts := ProposedOptions()
	opts.ObsSamples = 200
	opts.FillTrials = 100
	for _, width := range sim.LaneWidths() {
		opts.Lanes = width
		laneTotal := map[string]int{}
		opts.Observe.OnMCBatch = func(kind string, lanes int, elapsed time.Duration) {
			if kind != "obs" && kind != "fill" {
				t.Errorf("unknown MC batch kind %q", kind)
			}
			if lanes < 1 || lanes > width {
				t.Errorf("width %d: %s batch carries %d lanes", width, kind, lanes)
			}
			if elapsed < 0 {
				t.Errorf("%s batch has negative elapsed", kind)
			}
			laneTotal[kind] += lanes
		}
		sol, err := Build(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if laneTotal["obs"] != opts.ObsSamples {
			t.Errorf("width %d: obs batches carried %d lanes, want %d", width, laneTotal["obs"], opts.ObsSamples)
		}
		if sol.Stats.FilledInputs == 0 {
			t.Fatal("flow left no don't-cares to fill; test circuit no longer exercises fill")
		}
		if laneTotal["fill"] != opts.FillTrials {
			t.Errorf("width %d: fill batches carried %d lanes, want %d", width, laneTotal["fill"], opts.FillTrials)
		}
	}
	opts.Lanes = 0

	// The scalar backend evaluates no packed batches.
	opts.MC = MCScalar
	calls := 0
	opts.Observe.OnMCBatch = func(string, int, time.Duration) { calls++ }
	if _, err := Build(c, opts); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("scalar backend emitted %d MC batches", calls)
	}
}

// randomMCCircuit builds a small random, well-formed frozen circuit from
// the fuzz seed: a DAG of random gates over a few PIs and flops.
func randomMCCircuit(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("fuzz")
	nPI := 1 + rng.Intn(3)
	nFF := 1 + rng.Intn(4)
	var nets []string
	for i := 0; i < nPI; i++ {
		name := "pi" + string(rune('a'+i))
		c.AddPI(name)
		nets = append(nets, name)
	}
	for i := 0; i < nFF; i++ {
		q := "q" + string(rune('a'+i))
		nets = append(nets, q)
	}
	types := []logic.GateType{logic.Not, logic.Buf, logic.And, logic.Nand,
		logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Mux2}
	nGates := 3 + rng.Intn(20)
	var driven []string
	for i := 0; i < nGates; i++ {
		tpe := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(3)
		switch tpe {
		case logic.Not, logic.Buf:
			arity = 1
		case logic.Mux2:
			arity = 3
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := "g" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		c.AddGate(tpe, out, ins...)
		nets = append(nets, out)
		driven = append(driven, out)
	}
	for i := 0; i < nFF; i++ {
		d := driven[rng.Intn(len(driven))]
		c.AddFF("f"+string(rune('a'+i)), "q"+string(rune('a'+i)), d)
	}
	c.MarkPO(driven[len(driven)-1])
	c.MustFreeze()
	return c
}

// FuzzMCPackedEquivalence drives random circuits and flow shapes through
// both Monte-Carlo backends and requires bit-equal solutions. `make
// fuzz-equiv` runs this continuously; the seed corpus runs on every
// `go test`.
func FuzzMCPackedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), true, uint8(100), uint8(70))
	f.Add(int64(2), uint8(0xFF), false, uint8(1), uint8(1))
	f.Add(int64(99), uint8(0b1010), true, uint8(65), uint8(129))
	f.Fuzz(func(t *testing.T, seed int64, muxMask uint8, obsDirected bool, obsSamples, fillTrials uint8) {
		rng := rand.New(rand.NewSource(seed))
		c := randomMCCircuit(rng)
		mk := func(b MCBackend) Options {
			opts := ProposedOptions()
			opts.MC = b
			opts.Seed = seed
			opts.ObsDirected = obsDirected
			opts.ObsSamples = int(obsSamples) + 1
			opts.FillTrials = int(fillTrials) + 1
			opts.MuxMask = make([]bool, c.NumFFs())
			for fi := range opts.MuxMask {
				opts.MuxMask[fi] = muxMask>>(uint(fi)%8)&1 == 1
			}
			return opts
		}
		ref, err := Build(c, mk(MCScalar))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Build(c, mk(MCPacked))
		if err != nil {
			t.Fatal(err)
		}
		if field := solutionsIdentical(ref, got); field != "" {
			t.Fatalf("seed=%d mux=%x obs=%v samples=%d trials=%d: %s differs",
				seed, muxMask, obsDirected, int(obsSamples)+1, int(fillTrials)+1, field)
		}
	})
}
