package core

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// finder carries the state of FindControlledInputPattern: the controlled
// inputs (primary inputs plus multiplexed pseudo-inputs), the current
// partial assignment, the implied three-valued circuit state, and the
// transition classification (the TNS/TGS machinery of the paper).
type finder struct {
	c    *netlist.Circuit
	opts *Options
	ob   *obs.Observability // nil when not observability-directed
	rng  *rand.Rand

	loads      []float64     // per net, for "largest output capacitance"
	controlled []bool        // per net
	free       []bool        // per net: non-multiplexed pseudo-input
	assign     []logic.Value // per net: committed decision (controlled only)
	val        []logic.Value // implied state, X where free-dependent/unassigned
	trans      []bool        // per net: carries scan-chain transitions
	failed     []bool        // per gate: blocking attempted and failed
	pending    []netlist.GateID
	inBuf      []logic.Value
	btCands    []netlist.NetID

	blockedGates int
	failedGates  int

	// ctx, when non-nil, lets the search be cancelled between decisions;
	// err records the context error that stopped it.
	ctx context.Context
	err error
}

// cancelled checks the optional context and latches its error.
func (f *finder) cancelled() bool {
	if f.err != nil {
		return true
	}
	if f.ctx == nil {
		return false
	}
	if err := f.ctx.Err(); err != nil {
		f.err = err
		return true
	}
	return false
}

func newFinder(c *netlist.Circuit, opts *Options, muxable []bool,
	ob *obs.Observability, rng *rand.Rand) *finder {

	f := &finder{
		c:          c,
		opts:       opts,
		ob:         ob,
		rng:        rng,
		loads:      opts.Cap.NetLoads(c),
		controlled: make([]bool, c.NumNets()),
		free:       make([]bool, c.NumNets()),
		assign:     make([]logic.Value, c.NumNets()),
		val:        make([]logic.Value, c.NumNets()),
		trans:      make([]bool, c.NumNets()),
		failed:     make([]bool, c.NumGates()),
		inBuf:      make([]logic.Value, 0, 8),
	}
	for _, pi := range c.PIs {
		f.controlled[pi] = true
	}
	for fi, ff := range c.FFs {
		if muxable != nil && muxable[fi] {
			f.controlled[ff.Q] = true
		} else {
			f.free[ff.Q] = true
		}
	}
	return f
}

// imply recomputes the implied three-valued state from the committed
// assignment: controlled inputs carry their assigned value (X if
// undecided), non-multiplexed pseudo-inputs are always X (they toggle
// with the chain).
func (f *finder) imply() {
	c := f.c
	for _, n := range c.CombInputs() {
		if f.controlled[n] {
			f.val[n] = f.assign[n]
		} else {
			f.val[n] = logic.X
		}
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		f.inBuf = f.inBuf[:0]
		for _, in := range g.Inputs {
			f.inBuf = append(f.inBuf, f.val[in])
		}
		f.val[g.Output] = logic.Eval(g.Type, f.inBuf)
	}
}

// classify recomputes the transition flags and the pending set (TGS): in
// topological order each gate with a transitioning input is blocked (some
// input holds the controlling value), pending (a don't-care side input
// could still be set to the controlling value), or failed/propagating.
func (f *finder) classify() {
	c := f.c
	f.pending = f.pending[:0]
	for n := range f.trans {
		f.trans[n] = f.free[n]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		anyTrans := false
		for _, in := range g.Inputs {
			if f.trans[in] {
				anyTrans = true
				break
			}
		}
		out := g.Output
		if !anyTrans {
			f.trans[out] = false
			continue
		}
		if !g.Type.HasControllingValue() {
			// NOT, BUF, XOR, XNOR, MUX2: transitions always pass
			// (the paper's FANOUT/NOT/XOR/XNOR rule).
			f.trans[out] = true
			continue
		}
		cv := g.Type.ControllingValue()
		blocked := false
		for _, in := range g.Inputs {
			if f.val[in] == cv {
				blocked = true
				break
			}
		}
		if blocked {
			f.trans[out] = false
			continue
		}
		if f.failed[gi] {
			f.trans[out] = true
			continue
		}
		if len(f.blockCandidates(gi)) == 0 {
			// No side input can take the controlling value: transitions
			// pass on (the paper's "add all fan-out nodes of mc_tg to
			// TNS" after exhausting the don't-care inputs).
			f.failed[gi] = true
			f.failedGates++
			f.trans[out] = true
			continue
		}
		f.pending = append(f.pending, gi)
		f.trans[out] = false
	}
}

// blockCandidates returns the side inputs of gate gi that currently carry
// a don't-care and are not themselves transition-carrying — exactly the
// inputs a controlling value could be justified on.
func (f *finder) blockCandidates(gi netlist.GateID) []netlist.NetID {
	g := &f.c.Gates[gi]
	var out []netlist.NetID
	for _, in := range g.Inputs {
		if f.val[in] == logic.X && !f.trans[in] {
			out = append(out, in)
		}
	}
	return out
}

// orderCandidates sorts candidate nets by the leakage-observability
// directive: when placing a 1 prefer minimum observability, when placing
// a 0 prefer maximum (so the blocking value lands where it also cheapens
// leakage). Without the directive the structural order is kept (the
// plain C-algorithm behaviour).
func (f *finder) orderCandidates(cands []netlist.NetID, v logic.Value) {
	if f.ob == nil {
		return
	}
	one := v == logic.One
	sort.SliceStable(cands, func(i, j int) bool {
		oi, oj := f.ob.At(cands[i]), f.ob.At(cands[j])
		if one {
			return oi < oj
		}
		return oi > oj
	})
}

// run executes the main FindControlledInputPattern loop: repeatedly take
// the pending transition gate with the largest output capacitance and try
// to justify its controlling value on one of its don't-care inputs.
func (f *finder) run() {
	f.imply()
	f.classify()
	for len(f.pending) > 0 {
		if f.cancelled() {
			return
		}
		// mc_tg: largest output capacitance.
		best := 0
		for i := 1; i < len(f.pending); i++ {
			if f.loads[f.c.Gates[f.pending[i]].Output] >
				f.loads[f.c.Gates[f.pending[best]].Output] {
				best = i
			}
		}
		gi := f.pending[best]
		g := &f.c.Gates[gi]
		cv := g.Type.ControllingValue()
		cands := f.blockCandidates(gi)
		f.orderCandidates(cands, cv)
		blocked := false
		for _, cand := range cands {
			if f.justify(cand, cv) {
				blocked = true
				break
			}
		}
		if blocked {
			f.blockedGates++
		} else {
			f.failed[gi] = true
			f.failedGates++
		}
		f.imply()
		f.classify()
	}
}

// fill assigns every still-undecided controlled input by random
// minimum-leakage search ([14]): FillTrials random completions are
// simulated and the cheapest kept. With the observability directive the
// first candidate is the per-input preferred-value vector, so the greedy
// choice competes against the random samples. The search itself runs on
// the backend Options.MC selects — fillScalar and fillPacked draw the
// same random stream and keep the same first-wins tie-break, so the
// winning completion is identical either way.
func (f *finder) fill() (filled int) {
	c := f.c
	var unassigned []netlist.NetID
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] == logic.X {
			unassigned = append(unassigned, n)
		}
	}
	if len(unassigned) == 0 {
		f.imply()
		return 0
	}
	trials := f.opts.FillTrials
	if trials < 1 {
		trials = 1
	}
	var best []logic.Value
	if f.opts.MC.packed() {
		best = f.fillPacked(unassigned, trials)
	} else {
		best = f.fillScalar(unassigned, trials)
	}
	for i, n := range unassigned {
		f.assign[n] = best[i]
	}
	f.imply()
	return len(unassigned)
}

// transitionNetCount counts nets still carrying transitions.
func (f *finder) transitionNetCount() int {
	n := 0
	for _, t := range f.trans {
		if t {
			n++
		}
	}
	return n
}
