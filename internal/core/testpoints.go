package core

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// Test-point insertion in the style of Sankaralingam & Touba (DFT 2002),
// reference [6] of the paper: gating gates are inserted at selected
// internal lines so that, with a global Test Point Enable signal asserted
// during scan shifting, those lines freeze and the activity behind them
// dies. It controls *peak* power, and — the drawback the paper calls out —
// it needs a dedicated global control signal routed to every point and
// adds a gate delay on every gated line (unlike the proposed structure,
// which reuses Shift Enable and only ever touches slack paths).

// TestPointPlan is the outcome of PlanTestPoints.
type TestPointPlan struct {
	// Circuit is the modified netlist with one AND/OR gate per point and
	// the TPE primary input appended.
	Circuit *netlist.Circuit
	// Nets are the gated lines (IDs in the ORIGINAL circuit) and Values
	// the constants they are forced to while TPE is asserted.
	Nets   []netlist.NetID
	Values []bool
	// TPEIndex is the index of the TPE input within Circuit.PIs.
	TPEIndex int
}

// InsertTestPoints gates the given nets of c: net n is replaced downstream
// by AND(n, ¬TPE) when forced to 0 or OR(n, TPE) when forced to 1. The
// composite AND/OR cells keep the intent legible; map the result through
// techmap for a library-only netlist.
func InsertTestPoints(c *netlist.Circuit, nets []netlist.NetID, values []bool) (*TestPointPlan, error) {
	if len(nets) != len(values) {
		return nil, fmt.Errorf("core: %d nets, %d values", len(nets), len(values))
	}
	gated := make(map[netlist.NetID]bool, len(nets))
	for _, n := range nets {
		if int(n) < 0 || int(n) >= c.NumNets() {
			return nil, fmt.Errorf("core: net %d out of range", n)
		}
		if c.Nets[n].IsPI() {
			return nil, fmt.Errorf("core: gating primary input %q is pointless (hold it instead)", c.Nets[n].Name)
		}
		if gated[n] {
			return nil, fmt.Errorf("core: net %q gated twice", c.Nets[n].Name)
		}
		gated[n] = true
	}
	nb := netlist.New(c.Name + "_tp")
	for _, pi := range c.PIs {
		nb.AddPI(c.Nets[pi].Name)
	}
	tpe := freshName(c, "TPE")
	nb.AddPI(tpe)
	tpeB := freshName(c, "TPE_B")
	nb.AddGate(logic.Not, tpeB, tpe)

	// raw returns the name carrying the original (ungated) signal.
	raw := func(n netlist.NetID) string {
		if gated[n] {
			return freshName(c, c.Nets[n].Name+"_tpraw")
		}
		return c.Nets[n].Name
	}
	for _, ff := range c.FFs {
		nb.AddFF(ff.Name, raw(ff.Q), c.Nets[ff.D].Name)
	}
	for _, g := range c.Gates {
		ins := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = c.Nets[in].Name
		}
		nb.AddGate(g.Type, raw(g.Output), ins...)
	}
	for i, n := range nets {
		name := c.Nets[n].Name
		if values[i] {
			nb.AddGate(logic.Or, name, raw(n), tpe)
		} else {
			nb.AddGate(logic.And, name, raw(n), tpeB)
		}
	}
	for _, po := range c.POs {
		nb.MarkPO(c.Nets[po].Name)
	}
	if err := nb.Freeze(); err != nil {
		return nil, fmt.Errorf("core: test-point netlist invalid: %w", err)
	}
	return &TestPointPlan{
		Circuit:  nb,
		Nets:     append([]netlist.NetID(nil), nets...),
		Values:   append([]bool(nil), values...),
		TPEIndex: len(c.PIs),
	}, nil
}

// AdaptPatterns extends a pattern set of the original circuit with the
// TPE bit (0 at capture — test points must be transparent functionally).
func (p *TestPointPlan) AdaptPatterns(pats []scan.Pattern) []scan.Pattern {
	out := make([]scan.Pattern, len(pats))
	for i, pat := range pats {
		pi := make([]bool, len(pat.PI)+1)
		copy(pi, pat.PI)
		// TPE bit defaults to false at capture.
		out[i] = scan.Pattern{PI: pi, State: pat.State}
	}
	return out
}

// AdaptConfig extends a shift configuration with the TPE pin held high
// during shifting (the whole point of the insertion).
func (p *TestPointPlan) AdaptConfig(cfg scan.ShiftConfig) scan.ShiftConfig {
	out := scan.ShiftConfig{
		PIHold: make([]logic.Value, len(cfg.PIHold)+1),
		Muxed:  append([]bool(nil), cfg.Muxed...),
		MuxVal: append([]bool(nil), cfg.MuxVal...),
	}
	copy(out.PIHold, cfg.PIHold)
	out.PIHold[p.TPEIndex] = logic.One
	return out
}

// RankTestPointCandidates orders the circuit's gate-output nets by a
// toggle profile (descending switched capacitance), the greedy priority
// of the insertion loop.
func RankTestPointCandidates(c *netlist.Circuit, profile []float64) []netlist.NetID {
	var cands []netlist.NetID
	for ni := range c.Nets {
		n := &c.Nets[ni]
		if n.IsPI() || n.IsPPI() {
			continue // inputs are held/muxed by other means
		}
		if profile[ni] <= 0 {
			continue
		}
		cands = append(cands, netlist.NetID(ni))
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return profile[cands[i]] > profile[cands[j]]
	})
	return cands
}
