package core

import (
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// newTestFinder builds a finder over c where the PIs are controlled and
// every flop is free (non-multiplexed), with deterministic options.
func newTestFinder(t *testing.T, c *netlist.Circuit, muxable []bool) *finder {
	t.Helper()
	opts := ProposedOptions()
	opts.ObsDirected = false
	if muxable == nil {
		muxable = make([]bool, c.NumFFs())
	}
	return newFinder(c, &opts, muxable, nil, rand.New(rand.NewSource(1)))
}

// blockable: one flop feeding a NAND whose other input is a PI — the
// classic blockable transition gate.
func blockableCircuit() *netlist.Circuit {
	c := netlist.New("blockable")
	c.AddPI("a")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Nand, "x", "q", "a")
	c.AddGate(logic.Not, "d", "x")
	c.MarkPO("x")
	c.MustFreeze()
	return c
}

func TestFinderBlocksThroughControllingValue(t *testing.T) {
	c := blockableCircuit()
	f := newTestFinder(t, c, nil)
	f.run()
	if f.blockedGates != 1 {
		t.Errorf("blockedGates = %d, want 1", f.blockedGates)
	}
	aID, _ := c.NetByName("a")
	if f.assign[aID] != logic.Zero {
		t.Errorf("a assigned %v, want 0 (NAND controlling value)", f.assign[aID])
	}
	// With a=0 the NAND output is constantly 1: x and d are quiet.
	xID, _ := c.NetByName("x")
	dID, _ := c.NetByName("d")
	if f.trans[xID] || f.trans[dID] {
		t.Error("downstream nets still marked transitioning")
	}
	if f.val[xID] != logic.One || f.val[dID] != logic.Zero {
		t.Errorf("implied values x=%v d=%v, want 1/0", f.val[xID], f.val[dID])
	}
}

// unblockable: flop drives an inverter chain — NOT gates have no
// controlling value, so transitions always pass.
func TestFinderCannotBlockInverterChain(t *testing.T) {
	c := netlist.New("invchain")
	c.AddPI("a")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Not, "x", "q")
	c.AddGate(logic.Not, "y", "x")
	c.AddGate(logic.Nand, "d", "a", "a")
	c.MarkPO("y")
	c.MustFreeze()
	f := newTestFinder(t, c, nil)
	f.run()
	xID, _ := c.NetByName("x")
	yID, _ := c.NetByName("y")
	if !f.trans[xID] || !f.trans[yID] {
		t.Error("inverter chain must stay transitioning")
	}
	if f.blockedGates != 0 {
		t.Errorf("blockedGates = %d, want 0", f.blockedGates)
	}
}

// twoFree: a NAND fed by two free flops has no don't-care side input —
// it must be classified failed, and the transition propagates to where a
// PI can finally block it.
func TestFinderFailsThenBlocksDownstream(t *testing.T) {
	c := netlist.New("twofree")
	c.AddPI("a")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Nand, "x", "q1", "q2") // unblockable: both inputs free
	c.AddGate(logic.Nand, "y", "x", "a")   // blockable via a=0
	c.AddGate(logic.Not, "d1", "y")
	c.AddGate(logic.Not, "d2", "a")
	c.MarkPO("y")
	c.MustFreeze()
	f := newTestFinder(t, c, nil)
	f.run()
	if f.failedGates < 1 {
		t.Errorf("failedGates = %d, want >= 1", f.failedGates)
	}
	if f.blockedGates < 1 {
		t.Errorf("blockedGates = %d, want >= 1", f.blockedGates)
	}
	xID, _ := c.NetByName("x")
	yID, _ := c.NetByName("y")
	if !f.trans[xID] {
		t.Error("x must keep transitioning")
	}
	if f.trans[yID] {
		t.Error("y should be blocked by a=0")
	}
}

// deepJustify: blocking requires justifying a controlling value through
// two levels of logic, exercising backtrace + implication.
func TestJustifyThroughLogic(t *testing.T) {
	c := netlist.New("deep")
	c.AddPI("a")
	c.AddPI("b")
	c.AddFF("f", "q", "d")
	// x = NOR(a, b): x==1 requires a=0 and b=0.
	c.AddGate(logic.Nor, "x", "a", "b")
	// y = NAND(q, inv): blocked by inv==0, i.e. x==1.
	c.AddGate(logic.Not, "inv", "x")
	c.AddGate(logic.Nand, "y", "q", "inv")
	c.AddGate(logic.Not, "d", "y")
	c.MarkPO("y")
	c.MustFreeze()
	f := newTestFinder(t, c, nil)
	f.run()
	aID, _ := c.NetByName("a")
	bID, _ := c.NetByName("b")
	yID, _ := c.NetByName("y")
	if f.trans[yID] {
		// Blocking y requires inv=0 <- x=1 <- a=0,b=0.
		if f.assign[aID] != logic.Zero || f.assign[bID] != logic.Zero {
			t.Errorf("a=%v b=%v", f.assign[aID], f.assign[bID])
		}
	}
	if f.blockedGates != 1 {
		t.Errorf("blockedGates = %d, want 1 (justified through NOR+NOT)", f.blockedGates)
	}
	if f.assign[aID] != logic.Zero || f.assign[bID] != logic.Zero {
		t.Errorf("justification should force a=0,b=0; got a=%v b=%v",
			f.assign[aID], f.assign[bID])
	}
}

// conflictJustify: the only blocking value is unjustifiable because the
// candidate input is driven purely by free flops.
func TestJustifyFailsOnFreeCone(t *testing.T) {
	c := netlist.New("freecone")
	c.AddPI("a")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	// side = NOT(q2): depends only on a free flop -> unjustifiable.
	c.AddGate(logic.Not, "side", "q2")
	c.AddGate(logic.Nand, "x", "q1", "side")
	c.AddGate(logic.Not, "d1", "x")
	c.AddGate(logic.Not, "d2", "a")
	c.MarkPO("x")
	c.MustFreeze()
	f := newTestFinder(t, c, nil)
	f.run()
	xID, _ := c.NetByName("x")
	if !f.trans[xID] {
		t.Error("x cannot be blocked (side input rides a free cone)")
	}
	// No controlled input should be left assigned by the failed attempt.
	aID, _ := c.NetByName("a")
	if f.assign[aID] != logic.X {
		t.Errorf("failed justification leaked assignment a=%v", f.assign[aID])
	}
}

// muxedFlopIsControlled: with the flop muxed, its Q is a controlled input
// and can itself take the blocking value.
func TestMuxedFlopActsAsControlledInput(t *testing.T) {
	c := netlist.New("muxed")
	c.AddPI("a")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Nand, "x", "q1", "q2")
	c.AddGate(logic.Not, "d1", "x")
	c.AddGate(logic.Not, "d2", "a")
	c.MarkPO("x")
	c.MustFreeze()
	f := newTestFinder(t, c, []bool{false, true}) // q2 muxed
	f.run()
	q2, _ := c.NetByName("q2")
	xID, _ := c.NetByName("x")
	if f.trans[xID] {
		t.Error("x should be blocked via the muxed q2")
	}
	if f.assign[q2] != logic.Zero {
		t.Errorf("q2 assigned %v, want 0", f.assign[q2])
	}
}

func TestFillAssignsEverythingBinary(t *testing.T) {
	c := blockableCircuit()
	f := newTestFinder(t, c, nil)
	f.run()
	filled := f.fill()
	if filled < 0 {
		t.Fatal("negative fill count")
	}
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] == logic.X {
			t.Errorf("controlled input %s left unassigned after fill", c.Nets[n].Name)
		}
	}
}

func TestFillPicksCheaperCompletion(t *testing.T) {
	// Single inverter from a PI: in=1 leaks 204, in=0 leaks 220. The fill
	// must choose 1.
	c := netlist.New("inv")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	c.MustFreeze()
	opts := ProposedOptions()
	opts.ObsDirected = false
	opts.FillTrials = 64
	f := newFinder(c, &opts, nil, nil, rand.New(rand.NewSource(2)))
	f.run()
	f.fill()
	aID, _ := c.NetByName("a")
	if f.assign[aID] != logic.One {
		t.Errorf("fill chose a=%v; a=1 is the cheaper inverter state", f.assign[aID])
	}
}

func TestClassifyBlockedBeatsFailed(t *testing.T) {
	// Once an input carries the controlling value, a previously failed
	// gate must be reported blocked (the blocked check precedes the
	// failed check).
	c := blockableCircuit()
	f := newTestFinder(t, c, nil)
	f.imply()
	f.classify()
	var gi netlist.GateID = -1
	for i := range c.Gates {
		if c.Gates[i].Type == logic.Nand {
			gi = netlist.GateID(i)
		}
	}
	f.failed[gi] = true // pretend blocking failed earlier
	aID, _ := c.NetByName("a")
	f.assign[aID] = logic.Zero
	f.imply()
	f.classify()
	xID, _ := c.NetByName("x")
	if f.trans[xID] {
		t.Error("controlling value must override the failed flag")
	}
}

// TestJustifyStress drives justify on random targets across random
// circuits: success must leave the target implied at the wanted value,
// failure must roll back every assignment it made.
func TestJustifyStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		p := iscas.Profile{
			Name: "jst", PIs: 2 + rng.Intn(5), POs: 2, FFs: 2 + rng.Intn(5),
			Gates: 30 + rng.Intn(60), Seed: rng.Int63(),
		}
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		muxable := make([]bool, c.NumFFs())
		for i := range muxable {
			muxable[i] = rng.Intn(2) == 0
		}
		opts := ProposedOptions()
		opts.ObsDirected = false
		f := newFinder(c, &opts, muxable, nil, rng)
		f.imply()
		f.classify()
		for attempt := 0; attempt < 30; attempt++ {
			n := netlist.NetID(rng.Intn(c.NumNets()))
			if f.val[n] != logic.X {
				continue
			}
			want := logic.FromBool(rng.Intn(2) == 1)
			before := append([]logic.Value(nil), f.assign...)
			ok := f.justify(n, want)
			if ok {
				if f.val[n] != want {
					t.Fatalf("justify claimed success but %s = %v, want %v",
						c.Nets[n].Name, f.val[n], want)
				}
				// Commitments must be monotone: nothing previously
				// assigned may have changed.
				for i, v := range before {
					if v != logic.X && f.assign[i] != v {
						t.Fatalf("justify changed a committed assignment")
					}
				}
			} else {
				for i := range before {
					if f.assign[i] != before[i] {
						t.Fatalf("failed justify leaked assignment on net %d", i)
					}
				}
			}
		}
	}
}
