// Package core implements the paper's contribution: the low-power scan
// structure that multiplexes non-critical scan-cell outputs to constants
// during shifting, and the algorithm that picks the constant vector so
// that (a) the transitions still entering from non-multiplexed scan cells
// are suppressed as close to their origin as possible and (b) the
// quiescent state leaks as little as possible.
//
// The three public stages mirror the paper:
//
//	AddMUX                    – timing-driven selection of multiplexable
//	                            pseudo-inputs (Section 4, step 1)
//	FindControlledInputPattern – transition blocking directed by leakage
//	                            observability, PODEM-like justification,
//	                            minimum-leakage don't-care fill
//	                            (Section 4, step 2)
//	ReorderInputs             – leakage-driven permutation of symmetric
//	                            gate inputs under the scan-mode state
//
// Build runs all stages and also provides the Huang–Lee input-control
// baseline (blocking through primary inputs only, no MUXes) used as the
// second comparison column of Table I.
package core

import (
	"time"

	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/timing"
)

// MCBackend selects the kernel behind the flow's two Monte-Carlo loops:
// the leakage-observability estimate and the minimum-leakage don't-care
// fill. Both backends are bit-identical for the same Options.Seed — the
// packed kernels draw the random stream in the scalar order and fold
// results in the scalar accumulation order — so the choice is purely a
// matter of speed.
type MCBackend string

const (
	// MCAuto (the zero value) resolves to MCPacked.
	MCAuto MCBackend = ""
	// MCPacked runs both loops on the 64-way bit-parallel simulators,
	// sharded across a worker pool. The default.
	MCPacked MCBackend = "packed"
	// MCScalar runs the serial reference kernels (one vector at a time).
	MCScalar MCBackend = "scalar"
)

// valid reports whether b names a known backend.
func (b MCBackend) valid() bool {
	switch b {
	case MCAuto, MCPacked, MCScalar:
		return true
	}
	return false
}

// packed reports whether b resolves to the packed kernels.
func (b MCBackend) packed() bool { return b != MCScalar }

// Options configures Build.
type Options struct {
	// UseMux enables the proposed MUX insertion; when false the flow
	// degrades to the input-control baseline (PIs are the only controlled
	// inputs).
	UseMux bool
	// ObsDirected steers every free choice with leakage observability
	// (the paper's directive); when false the first feasible candidate is
	// taken (the behaviour of the plain C-algorithm of the baseline).
	ObsDirected bool
	// ObsSamples sizes the Monte-Carlo observability estimate.
	ObsSamples int
	// FillTrials is the number of random minimum-leakage fills tried for
	// leftover don't-care controlled inputs ([14]'s random search).
	FillTrials int
	// JustifyBacktracks bounds each justification search.
	JustifyBacktracks int
	// ReorderInputs enables the final gate input reordering stage.
	ReorderInputs bool
	// MuxMask, when non-nil, overrides AddMUX's timing-driven selection
	// with an explicit per-flop choice (used by ablation studies; flops
	// the timing analysis rejects should not be forced without accepting
	// the delay penalty).
	MuxMask []bool
	// Seed makes the randomized pieces reproducible.
	Seed int64
	// MC selects the Monte-Carlo kernel backend for the observability
	// estimate and the don't-care fill; the zero value means packed.
	// Results are identical across backends for the same Seed.
	MC MCBackend
	// Lanes is the batch width of the packed Monte-Carlo kernels (see
	// sim.LaneWidths; 0 means the default, sim.WideLanes). Results are
	// bit-identical across widths, so this is purely a throughput knob;
	// the scalar backend ignores it.
	Lanes int

	// Observe receives fine-grained flow telemetry; the zero value is
	// free. Excluded from JSON so Options summaries stay marshalable.
	Observe Observer `json:"-"`

	Delay timing.DelayModel
	Leak  *leakage.Model
	Cap   power.CapModel
}

// Observer receives fine-grained telemetry from Build. Every field is
// optional; emission sites are single nil checks, so the zero Observer
// adds no work to the justification hot loop.
type Observer struct {
	// OnJustify fires after each justification attempt of the blocking
	// search: the target net, whether a blocking assignment was committed,
	// and the backtracks the branch-and-bound spent.
	OnJustify func(target netlist.NetID, success bool, backtracks int)
	// OnObsSamples fires as the Monte-Carlo observability estimate
	// progresses, with the number of vectors simulated since the last
	// call.
	OnObsSamples func(n int)
	// OnPhase fires when a flow phase completes: "observability",
	// "blocking", "fill", or "reorder".
	OnPhase func(phase string, elapsed time.Duration)
	// OnMCBatch fires once per 64-lane batch evaluated by a packed
	// Monte-Carlo kernel: kind is "obs" or "fill", lanes the vectors (or
	// fill trials) the batch carried, elapsed its evaluation wall time.
	// Called from a single goroutine per kernel run.
	OnMCBatch func(kind string, lanes int, elapsed time.Duration)
}

// phaseTimer returns a stopper for the named phase, or a no-op when
// OnPhase is unset (the no-op literal captures nothing).
func (o Observer) phaseTimer(phase string) func() {
	if o.OnPhase == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		o.OnPhase(phase, time.Since(start))
	}
}

// ProposedOptions returns the full proposed flow of the paper.
func ProposedOptions() Options {
	return Options{
		UseMux:            true,
		ObsDirected:       true,
		ObsSamples:        256,
		FillTrials:        256,
		JustifyBacktracks: 50,
		ReorderInputs:     true,
		Seed:              1,
		Delay:             timing.Default(),
		Leak:              leakage.Default(),
		Cap:               power.DefaultCapModel(),
	}
}

// InputControlOptions returns the Huang–Lee baseline configuration:
// transition blocking through primary inputs only, no observability
// directive, no MUXes, no reordering.
func InputControlOptions() Options {
	o := ProposedOptions()
	o.UseMux = false
	o.ObsDirected = false
	o.ReorderInputs = false
	return o
}

// Stats reports what the flow did.
type Stats struct {
	// MuxCount is the number of pseudo-inputs that received a MUX.
	MuxCount int
	// CriticalDelay is the pre-modification critical path delay (ps); by
	// construction it is unchanged afterwards.
	CriticalDelay float64
	// BlockedGates counts transition gates successfully blocked by a
	// justified controlling value; FailedGates counts those whose
	// transitions pass on.
	BlockedGates int
	FailedGates  int
	// TransitionNets is the number of nets still carrying transitions in
	// scan mode (the residue the structure could not suppress).
	TransitionNets int
	// AssignedInputs / FilledInputs split the controlled inputs between
	// justification-assigned and leakage-filled don't-cares.
	AssignedInputs int
	FilledInputs   int
	// ReorderedGates counts gates whose input order changed.
	ReorderedGates int
	// ScanLeakNA is the expected combinational leakage in scan mode under
	// the final vector (free pseudo-inputs X-averaged), in nA.
	ScanLeakNA float64
}
