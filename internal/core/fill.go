package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// fillScalar is the serial reference kernel of the minimum-leakage fill:
// one random completion per trial, implied and costed in place. The
// per-trial cost runs on the precomputed X-averaged tables of
// leakage.CircuitTables3 — bit-identical to CircuitLeak, minus the
// per-gate map lookup and refinement enumeration the old loop repeated
// FillTrials times.
//
// Returns the winning per-input values, parallel to unassigned. On
// cancellation mid-search the best completion seen so far is returned
// and the latched context error makes the caller discard the run.
func (f *finder) fillScalar(unassigned []netlist.NetID, trials int) []logic.Value {
	c := f.c
	tabs3 := f.opts.Leak.CircuitTables3(c)
	bestLeak := 0.0
	best := make([]logic.Value, len(unassigned))
	cur := make([]logic.Value, len(unassigned))
	for trial := 0; trial < trials; trial++ {
		if f.cancelled() {
			break
		}
		for i, n := range unassigned {
			if trial == 0 && f.ob != nil {
				cur[i] = logic.FromBool(f.ob.PreferredValue(n))
			} else {
				cur[i] = logic.FromBool(f.rng.Intn(2) == 1)
			}
			f.assign[n] = cur[i]
		}
		f.imply()
		leak := f.opts.Leak.CircuitLeakTabs3(c, f.val, tabs3)
		if trial == 0 || leak < bestLeak {
			bestLeak = leak
			copy(best, cur)
		}
	}
	return best
}

// fillScratch is the reusable state of fillPacked for one (circuit, lane
// width) pair: the compiled dual-rail evaluator, the broadcast base
// state, per-worker net-state buffers, and per-batch cost buffers. A
// finished fill returns its scratch to fillPool, so repeated fills on the
// same circuit (ablations, repeated Builds) allocate nothing batch-sized.
type fillScratch struct {
	c     *netlist.Circuit
	ww    int
	eval  func(v, x []uint64) // stateless: shared by all workers
	baseV []uint64
	baseX []uint64
	vs    [][]uint64 // per worker
	xs    [][]uint64
	cycs  [][]float64 // per batch
	lanes []int
	span  []time.Duration
}

var fillPool sync.Pool

// getFillScratch fetches pooled scratch compatible with (c, ww) or
// builds a fresh one.
func getFillScratch(c *netlist.Circuit, ww int) *fillScratch {
	if s, _ := fillPool.Get().(*fillScratch); s != nil && s.c == c && s.ww == ww {
		return s
	}
	s := &fillScratch{c: c, ww: ww}
	prog := sim.Compile(c)
	if ww == 1 {
		s.eval = sim.NewPacked3Program(prog).EvalNets
	} else {
		s.eval = sim.NewWide3Program(prog).EvalNets
	}
	nw := c.NumNets() * ww
	s.baseV = make([]uint64, nw)
	s.baseX = make([]uint64, nw)
	return s
}

// ensure grows the scratch to workers net-state buffers and nBatches
// cost buffers.
func (s *fillScratch) ensure(workers, nBatches, laneWidth int) {
	nw := s.c.NumNets() * s.ww
	for len(s.vs) < workers {
		s.vs = append(s.vs, make([]uint64, nw))
		s.xs = append(s.xs, make([]uint64, nw))
	}
	for len(s.cycs) < nBatches {
		s.cycs = append(s.cycs, make([]float64, laneWidth))
	}
	if len(s.lanes) < nBatches {
		s.lanes = make([]int, nBatches)
		s.span = make([]time.Duration, nBatches)
	}
}

// fillPacked runs the same search many trials at a time on the dual-rail
// three-valued simulator: each trial is one lane (opts.Lanes per batch,
// default sim.WideLanes = 256), free pseudo-inputs stay X in every lane,
// and per-lane costs come from the X-averaged tables in the scalar gate
// order.
//
// Bit-identity with fillScalar holds at every lane width because (a) the
// candidate bits are drawn up front in the scalar loop's exact rng order
// — trial 0 under the observability directive takes the preferred-value
// vector and draws nothing, (b) the packed dual-rail lanes equal
// logic.Eval on the same inputs, (c) leakage.AccumLeak3PackedW
// accumulates each lane in CircuitLeakTabs3's gate order, and (d) the
// reduction walks trials in ascending order with the scalar first-wins
// tie-break. Batches are sharded across a worker pool; the reduction is
// a single goroutine.
func (f *finder) fillPacked(unassigned []netlist.NetID, trials int) []logic.Value {
	best := make([]logic.Value, len(unassigned))
	if f.cancelled() {
		return best
	}
	laneWidth, err := sim.ResolveLanes(f.opts.Lanes)
	if err != nil {
		// BuildContext validates Options.Lanes up front; latch the error
		// for direct finder users and return the empty completion.
		f.err = err
		return best
	}
	ww := laneWidth / 64
	c := f.c
	lm := f.opts.Leak
	tabs3 := lm.CircuitTables3(c)
	nWords := (trials + 63) / 64 // candidate words per input, 64 trials each
	nBatches := (trials + laneWidth - 1) / laneWidth

	// cand[i*nWords+w] bit t = input i's value in trial w*64+t. Drawn in
	// the scalar loop's exact rng order, independent of the lane width.
	cand := make([]uint64, len(unassigned)*nWords)
	for trial := 0; trial < trials; trial++ {
		w := trial >> 6
		bit := uint64(1) << uint(trial&63)
		for i, n := range unassigned {
			var one bool
			if trial == 0 && f.ob != nil {
				one = f.ob.PreferredValue(n)
			} else {
				one = f.rng.Intn(2) == 1
			}
			if one {
				cand[i*nWords+w] |= bit
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nBatches {
		workers = nBatches
	}
	scratch := getFillScratch(c, ww)
	scratch.ensure(workers, nBatches, laneWidth)
	defer fillPool.Put(scratch)

	// The lane pattern every trial shares: committed controlled inputs
	// broadcast their binary value, everything else (free pseudo-inputs,
	// and the unassigned slots about to be overlaid) is X.
	baseV, baseX := scratch.baseV, scratch.baseX
	for i := range baseV {
		baseV[i] = 0
		baseX[i] = 0
	}
	for _, n := range c.CombInputs() {
		grp := int(n) * ww
		if f.controlled[n] && f.assign[n] != logic.X {
			if f.assign[n] == logic.One {
				for k := 0; k < ww; k++ {
					baseV[grp+k] = ^uint64(0)
				}
			}
		} else {
			for k := 0; k < ww; k++ {
				baseX[grp+k] = ^uint64(0)
			}
		}
	}

	if f.cancelled() {
		return best
	}

	// evalBatch costs batch wi on worker w's net-state buffers.
	evalBatch := func(w, wi int) {
		v, x := scratch.vs[w], scratch.xs[w]
		n := trials - wi*laneWidth
		if n > laneWidth {
			n = laneWidth
		}
		t0 := time.Now()
		copy(v, baseV)
		copy(x, baseX)
		for i, net := range unassigned {
			grp := int(net) * ww
			nw := nWords - wi*ww
			if nw > ww {
				nw = ww
			}
			copy(v[grp:grp+nw], cand[i*nWords+wi*ww:])
			for k := 0; k < ww; k++ {
				x[grp+k] = 0
			}
		}
		scratch.eval(v, x)
		cyc := scratch.cycs[wi]
		for t := 0; t < n; t++ {
			cyc[t] = 0
		}
		lm.AccumLeak3PackedW(c, v, x, ww, n, tabs3, cyc)
		scratch.lanes[wi] = n
		scratch.span[wi] = time.Since(t0)
	}

	if workers == 1 {
		for wi := 0; wi < nBatches; wi++ {
			evalBatch(0, wi)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for wi := range next {
					evalBatch(w, wi)
				}
			}(w)
		}
		for wi := 0; wi < nBatches; wi++ {
			next <- wi
		}
		close(next)
		wg.Wait()
	}

	// Reduce in ascending trial order — the scalar tie-break.
	bestLeak := 0.0
	bestTrial := 0
	mcb := f.opts.Observe.OnMCBatch
	for wi := 0; wi < nBatches; wi++ {
		cyc := scratch.cycs[wi]
		for t := 0; t < scratch.lanes[wi]; t++ {
			trial := wi*laneWidth + t
			if trial == 0 || cyc[t] < bestLeak {
				bestLeak = cyc[t]
				bestTrial = trial
			}
		}
		if mcb != nil {
			mcb("fill", scratch.lanes[wi], scratch.span[wi])
		}
	}
	for i := range unassigned {
		w := cand[i*nWords+bestTrial>>6]
		best[i] = logic.FromBool(w>>uint(bestTrial&63)&1 == 1)
	}
	return best
}
