package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// fillScalar is the serial reference kernel of the minimum-leakage fill:
// one random completion per trial, implied and costed in place. The
// per-trial cost runs on the precomputed X-averaged tables of
// leakage.CircuitTables3 — bit-identical to CircuitLeak, minus the
// per-gate map lookup and refinement enumeration the old loop repeated
// FillTrials times.
//
// Returns the winning per-input values, parallel to unassigned. On
// cancellation mid-search the best completion seen so far is returned
// and the latched context error makes the caller discard the run.
func (f *finder) fillScalar(unassigned []netlist.NetID, trials int) []logic.Value {
	c := f.c
	tabs3 := f.opts.Leak.CircuitTables3(c)
	bestLeak := 0.0
	best := make([]logic.Value, len(unassigned))
	cur := make([]logic.Value, len(unassigned))
	for trial := 0; trial < trials; trial++ {
		if f.cancelled() {
			break
		}
		for i, n := range unassigned {
			if trial == 0 && f.ob != nil {
				cur[i] = logic.FromBool(f.ob.PreferredValue(n))
			} else {
				cur[i] = logic.FromBool(f.rng.Intn(2) == 1)
			}
			f.assign[n] = cur[i]
		}
		f.imply()
		leak := f.opts.Leak.CircuitLeakTabs3(c, f.val, tabs3)
		if trial == 0 || leak < bestLeak {
			bestLeak = leak
			copy(best, cur)
		}
	}
	return best
}

// fillPacked runs the same search 64 trials at a time on the dual-rail
// three-valued simulator: each trial is one lane, free pseudo-inputs
// stay X in every lane, and per-lane costs come from the X-averaged
// tables in the scalar gate order.
//
// Bit-identity with fillScalar holds because (a) the candidate bits are
// drawn up front in the scalar loop's exact rng order — trial 0 under
// the observability directive takes the preferred-value vector and
// draws nothing, (b) sim.Packed3 lanes equal logic.Eval on the same
// inputs, (c) leakage.AccumLeak3Packed accumulates each lane in
// CircuitLeakTabs3's gate order, and (d) the reduction walks trials in
// ascending order with the scalar first-wins tie-break. Words are
// sharded across a worker pool; the reduction is a single goroutine.
func (f *finder) fillPacked(unassigned []netlist.NetID, trials int) []logic.Value {
	best := make([]logic.Value, len(unassigned))
	if f.cancelled() {
		return best
	}
	c := f.c
	lm := f.opts.Leak
	tabs3 := lm.CircuitTables3(c)
	nNets := c.NumNets()
	nWords := (trials + sim.PackedLanes - 1) / sim.PackedLanes

	// cand[i*nWords+w] bit t = input i's value in trial w*64+t.
	cand := make([]uint64, len(unassigned)*nWords)
	for trial := 0; trial < trials; trial++ {
		w := trial / sim.PackedLanes
		bit := uint64(1) << uint(trial%sim.PackedLanes)
		for i, n := range unassigned {
			var one bool
			if trial == 0 && f.ob != nil {
				one = f.ob.PreferredValue(n)
			} else {
				one = f.rng.Intn(2) == 1
			}
			if one {
				cand[i*nWords+w] |= bit
			}
		}
	}

	// The lane pattern every trial shares: committed controlled inputs
	// broadcast their binary value, everything else (free pseudo-inputs,
	// and the unassigned slots about to be overlaid) is X.
	baseV := make([]uint64, nNets)
	baseX := make([]uint64, nNets)
	for _, n := range c.CombInputs() {
		if f.controlled[n] && f.assign[n] != logic.X {
			if f.assign[n] == logic.One {
				baseV[n] = ^uint64(0)
			}
		} else {
			baseX[n] = ^uint64(0)
		}
	}

	if f.cancelled() {
		return best
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nWords {
		workers = nWords
	}
	ps := sim.NewPacked3(c) // stateless: shared by all workers
	cycs := make([][]float64, nWords)
	lanes := make([]int, nWords)
	elapsed := make([]time.Duration, nWords)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := make([]uint64, nNets)
			x := make([]uint64, nNets)
			for wi := range next {
				n := trials - wi*sim.PackedLanes
				if n > sim.PackedLanes {
					n = sim.PackedLanes
				}
				t0 := time.Now()
				copy(v, baseV)
				copy(x, baseX)
				for i, net := range unassigned {
					v[net] = cand[i*nWords+wi]
					x[net] = 0
				}
				ps.EvalNets(v, x)
				cyc := make([]float64, sim.PackedLanes)
				lm.AccumLeak3Packed(c, v, x, n, tabs3, cyc)
				cycs[wi] = cyc
				lanes[wi] = n
				elapsed[wi] = time.Since(t0)
			}
		}()
	}
	for wi := 0; wi < nWords; wi++ {
		next <- wi
	}
	close(next)
	wg.Wait()

	// Reduce in ascending trial order — the scalar tie-break.
	bestLeak := 0.0
	bestTrial := 0
	mcb := f.opts.Observe.OnMCBatch
	for wi := 0; wi < nWords; wi++ {
		cyc := cycs[wi]
		for t := 0; t < lanes[wi]; t++ {
			trial := wi*sim.PackedLanes + t
			if trial == 0 || cyc[t] < bestLeak {
				bestLeak = cyc[t]
				bestTrial = trial
			}
		}
		if mcb != nil {
			mcb("fill", lanes[wi], elapsed[wi])
		}
	}
	for i := range unassigned {
		w := cand[i*nWords+bestTrial/sim.PackedLanes]
		best[i] = logic.FromBool(w>>uint(bestTrial%sim.PackedLanes)&1 == 1)
	}
	return best
}
