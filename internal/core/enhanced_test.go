package core

import (
	"testing"
)

func TestEnhancedScanIsolatesEverything(t *testing.T) {
	c := mappedS27(t)
	sol, penalty, err := EnhancedScan(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cfg.MuxCount() != c.NumFFs() {
		t.Errorf("enhanced scan muxed %d/%d flops", sol.Cfg.MuxCount(), c.NumFFs())
	}
	// Everything quiet: no transition ever enters the combinational part.
	if sol.Stats.TransitionNets != 0 {
		t.Errorf("%d nets still transitioning under full isolation", sol.Stats.TransitionNets)
	}
	if sol.BlockedShare() != 1 {
		t.Errorf("BlockedShare = %v, want 1", sol.BlockedShare())
	}
	// And it must cost normal-mode delay (that is the paper's whole
	// argument for selective muxing): s27 has critical pseudo-inputs.
	if penalty <= 0 {
		t.Errorf("enhanced scan delay penalty = %v, want > 0", penalty)
	}
}

func TestEnhancedScanVsProposedDelay(t *testing.T) {
	c := mappedS27(t)
	prop, err := Build(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, penalty, err := EnhancedScan(c, ProposedOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The proposed structure never pays delay; enhanced does (on circuits
	// with critical pseudo-inputs). Proposed must have rejected at least
	// one flop here, otherwise the comparison is vacuous.
	if prop.Stats.MuxCount == c.NumFFs() {
		t.Skip("all flops muxable on this circuit; delay comparison vacuous")
	}
	if penalty <= 0 {
		t.Error("enhanced scan should pay a delay penalty when proposed rejects flops")
	}
}
