package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Solution is the output of the full flow: everything the tester needs to
// drive the structure (the shift configuration) plus the analysis state
// that produced it.
type Solution struct {
	// Circuit is the analyzed circuit; when Options.ReorderInputs is set
	// it is a clone of the input with permuted symmetric-gate inputs.
	Circuit *netlist.Circuit
	// Cfg is the scan-mode behaviour: which flops are multiplexed, their
	// constants, and the primary-input hold values.
	Cfg scan.ShiftConfig
	// Assign is the final controlled-input assignment per net.
	Assign []logic.Value
	// Val is the implied scan-mode three-valued state (X = toggling).
	Val []logic.Value
	// Trans flags the nets still carrying transitions during shift.
	Trans []bool
	// Timing is the pre-modification analysis (AddMUX's basis); nil for
	// the input-control baseline.
	Timing *timing.Analysis
	// Stats summarizes the run.
	Stats Stats

	leakNA func() float64
}

// Build runs the complete flow of the paper (or the input-control
// baseline, depending on opts) on the frozen circuit c. The input circuit
// is never mutated.
func Build(c *netlist.Circuit, opts Options) (*Solution, error) {
	return BuildContext(context.Background(), c, opts)
}

// BuildContext is Build with cancellation: the justification search
// checks ctx between decisions and the main blocking loop between target
// gates, so a pathological circuit can be abandoned mid-flow. The
// returned error is ctx.Err() when the context ends the run.
func BuildContext(ctx context.Context, c *netlist.Circuit, opts Options) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !c.Frozen() {
		return nil, fmt.Errorf("core: circuit %s must be frozen", c.Name)
	}
	if opts.Leak == nil {
		return nil, fmt.Errorf("core: Options.Leak is required")
	}
	if opts.JustifyBacktracks <= 0 {
		opts.JustifyBacktracks = 50
	}
	if !opts.MC.valid() {
		return nil, fmt.Errorf("core: unknown MC backend %q", opts.MC)
	}
	if _, err := sim.ResolveLanes(opts.Lanes); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	work := c.Clone()
	if err := work.Freeze(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	sol := &Solution{Circuit: work}

	// Step 1: AddMUX (proposed structure only).
	var muxable []bool
	switch {
	case opts.UseMux && opts.MuxMask != nil:
		if len(opts.MuxMask) != work.NumFFs() {
			return nil, fmt.Errorf("core: MuxMask has %d entries for %d flops",
				len(opts.MuxMask), work.NumFFs())
		}
		muxable = append([]bool(nil), opts.MuxMask...)
		sol.Stats.CriticalDelay = timing.Analyze(work, opts.Delay).Critical
		for _, m := range muxable {
			if m {
				sol.Stats.MuxCount++
			}
		}
	case opts.UseMux:
		var a *timing.Analysis
		muxable, a = AddMUX(work, opts.Delay)
		sol.Timing = a
		sol.Stats.CriticalDelay = a.Critical
		for _, m := range muxable {
			if m {
				sol.Stats.MuxCount++
			}
		}
	default:
		muxable = make([]bool, work.NumFFs())
		sol.Stats.CriticalDelay = timing.Analyze(work, opts.Delay).Critical
	}

	// Leakage observability directive. Both backends consume the shared
	// rng's stream identically, so the finder below sees the same draws
	// whichever kernel ran.
	var ob *obs.Observability
	if opts.ObsDirected {
		doneObs := opts.Observe.phaseTimer("observability")
		var err error
		if opts.MC.packed() {
			po := obs.PackedOpts{OnSamples: opts.Observe.OnObsSamples, Lanes: opts.Lanes}
			if mcb := opts.Observe.OnMCBatch; mcb != nil {
				po.OnBatch = func(lanes int, elapsed time.Duration) {
					mcb("obs", lanes, elapsed)
				}
			}
			ob, err = obs.EstimatePacked(ctx, work, opts.Leak, opts.ObsSamples, rng, po)
		} else {
			ob, err = obs.EstimateObserved(ctx, work, opts.Leak, opts.ObsSamples, rng,
				opts.Observe.OnObsSamples)
		}
		doneObs()
		if err != nil {
			return nil, err
		}
	}

	// Step 2: FindControlledInputPattern.
	f := newFinder(work, &opts, muxable, ob, rng)
	f.ctx = ctx
	doneBlock := opts.Observe.phaseTimer("blocking")
	f.run()
	doneBlock()
	if f.err != nil {
		return nil, f.err
	}
	sol.Stats.BlockedGates = f.blockedGates
	sol.Stats.FailedGates = f.failedGates
	assignedBeforeFill := 0
	for _, n := range work.CombInputs() {
		if f.controlled[n] && f.assign[n] != logic.X {
			assignedBeforeFill++
		}
	}
	sol.Stats.AssignedInputs = assignedBeforeFill
	doneFill := opts.Observe.phaseTimer("fill")
	sol.Stats.FilledInputs = f.fill()
	doneFill()
	f.classify()
	sol.Stats.TransitionNets = f.transitionNetCount()

	// Step 3: gate input reordering under the scan-mode state.
	if opts.ReorderInputs {
		doneReorder := opts.Observe.phaseTimer("reorder")
		sol.Stats.ReorderedGates = ReorderInputs(work, f.val, opts.Leak)
		f.imply() // values are unchanged, but recompute for cleanliness
		f.classify()
		doneReorder()
	}
	if f.err != nil {
		return nil, f.err
	}

	sol.Assign = append([]logic.Value(nil), f.assign...)
	sol.Val = append([]logic.Value(nil), f.val...)
	sol.Trans = append([]bool(nil), f.trans...)
	sol.Stats.ScanLeakNA = opts.Leak.CircuitLeak(work, f.val)
	sol.leakNA = func() float64 { return opts.Leak.CircuitLeak(work, f.val) }

	// Assemble the shift configuration.
	cfg := scan.ShiftConfig{
		PIHold: make([]logic.Value, len(work.PIs)),
		Muxed:  append([]bool(nil), muxable...),
		MuxVal: make([]bool, work.NumFFs()),
	}
	for i, pi := range work.PIs {
		cfg.PIHold[i] = sol.Assign[pi]
	}
	for fi, ff := range work.FFs {
		if muxable[fi] {
			v := sol.Assign[ff.Q]
			if !v.IsBinary() {
				// A muxed pseudo-input the fill never touched (possible
				// only when it is also dead); tie low.
				v = logic.Zero
			}
			cfg.MuxVal[fi] = v == logic.One
		}
	}
	sol.Cfg = cfg
	return sol, nil
}

// MuxScanLeakNA returns the leakage added by the inserted MUX cells
// themselves during scan mode (d0 = toggling chain bit, d1 = tied
// constant, select = Shift Enable = 1), in nA. The combinational-part
// figures of Table I exclude the scan cells; expose this so callers can
// report the structure's own overhead.
func (s *Solution) MuxScanLeakNA(lm interface {
	GateLeak(t logic.GateType, in []logic.Value) float64
}) float64 {
	total := 0.0
	for fi := range s.Circuit.FFs {
		if !s.Cfg.Muxed[fi] {
			continue
		}
		d1 := logic.Zero
		if s.Cfg.MuxVal[fi] {
			d1 = logic.One
		}
		total += lm.GateLeak(logic.Mux2, []logic.Value{logic.X, d1, logic.One})
	}
	return total
}

// BlockedShare returns the fraction of gates whose scan-mode output is a
// binary constant (fully quiet during shifting).
func (s *Solution) BlockedShare() float64 {
	if s.Circuit.NumGates() == 0 {
		return 1
	}
	quiet := 0
	for gi := range s.Circuit.Gates {
		if !s.Trans[s.Circuit.Gates[gi].Output] {
			quiet++
		}
	}
	return float64(quiet) / float64(s.Circuit.NumGates())
}
