package core

import (
	"repro/internal/netlist"
	"repro/internal/timing"
)

// EnhancedScan builds the fully isolated structure used by enhanced-scan
// and Hertwig–Wunderlich-style schemes ([5] in the paper): every
// scan-cell output is gated, so no chain transition ever reaches the
// combinational logic, regardless of timing. It is the upper bound on
// dynamic suppression — and it is exactly what the paper refuses to pay
// for, because gating critical pseudo-inputs lengthens the clock period.
//
// The returned penalty is that cost: the increase in critical path delay
// (ps) once every flop output carries a gate, measured on the
// materialized netlist against the unmodified circuit.
func EnhancedScan(c *netlist.Circuit, opts Options) (*Solution, float64, error) {
	mask := make([]bool, c.NumFFs())
	for i := range mask {
		mask[i] = true
	}
	opts.UseMux = true
	opts.MuxMask = mask
	sol, err := Build(c, opts)
	if err != nil {
		return nil, 0, err
	}
	dft, err := InsertMuxes(c, sol.Cfg.Muxed, sol.Cfg.MuxVal)
	if err != nil {
		return nil, 0, err
	}
	before := timing.Analyze(c, opts.Delay).Critical
	after := timing.Analyze(dft, opts.Delay).Critical
	return sol, after - before, nil
}
