package core

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// InsertMuxes materializes the proposed DFT structure as a netlist: every
// flop with muxed[f] set has its Q output routed through a MUX2 whose
// other data input ties to the constant muxVal[f] (locally connected to
// Vcc or Gnd — no routing overhead, as the paper notes) and whose select
// is the Shift Enable signal (present in every scan design; no extra
// control signal).
//
// The returned circuit has two extra primary inputs, "SE" (shift enable)
// and the internal constant rails "TIE0"/"TIE1" (modeled as inputs the
// testbench drives), plus renamed raw flop outputs. With SE=0 it is
// functionally identical to the original — that equivalence and the
// unchanged fault coverage are what the integration tests check.
func InsertMuxes(c *netlist.Circuit, muxed []bool, muxVal []bool) (*netlist.Circuit, error) {
	if len(muxed) != c.NumFFs() || len(muxVal) != c.NumFFs() {
		return nil, fmt.Errorf("core: muxed/muxVal sized %d/%d for %d flops",
			len(muxed), len(muxVal), c.NumFFs())
	}
	anyMux := false
	needTie0, needTie1 := false, false
	for f, m := range muxed {
		if m {
			anyMux = true
			if muxVal[f] {
				needTie1 = true
			} else {
				needTie0 = true
			}
		}
	}
	nb := netlist.New(c.Name + "_dft")
	for _, pi := range c.PIs {
		nb.AddPI(c.Nets[pi].Name)
	}
	var se string
	if anyMux {
		se = freshName(c, "SE")
		nb.AddPI(se)
		if needTie0 {
			nb.AddPI(freshName(c, "TIE0"))
		}
		if needTie1 {
			nb.AddPI(freshName(c, "TIE1"))
		}
	}
	for f, ff := range c.FFs {
		q := c.Nets[ff.Q].Name
		d := c.Nets[ff.D].Name
		if muxed[f] {
			raw := freshName(c, q+"_raw")
			nb.AddFF(ff.Name, raw, d)
			tie := freshName(c, "TIE0")
			if muxVal[f] {
				tie = freshName(c, "TIE1")
			}
			// MUX2(d0, d1, sel): sel=SE picks the tied constant during
			// shift, the flop output otherwise.
			nb.AddGate(logic.Mux2, q, raw, tie, se)
		} else {
			nb.AddFF(ff.Name, q, d)
		}
	}
	for _, g := range c.Gates {
		ins := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = c.Nets[in].Name
		}
		nb.AddGate(g.Type, c.Nets[g.Output].Name, ins...)
	}
	for _, po := range c.POs {
		nb.MarkPO(c.Nets[po].Name)
	}
	if err := nb.Freeze(); err != nil {
		return nil, fmt.Errorf("core: InsertMuxes produced malformed netlist: %w", err)
	}
	return nb, nil
}

// freshName returns base if unused in c, otherwise base with a numeric
// suffix that is.
func freshName(c *netlist.Circuit, base string) string {
	if _, ok := c.NetByName(base); !ok {
		return base
	}
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, ok := c.NetByName(name); !ok {
			return name
		}
	}
}
