package core

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// justify tries to force net target to value want by assigning controlled
// inputs only, with non-multiplexed pseudo-inputs pinned at X. It is the
// paper's Justify(): a PODEM-like branch-and-bound whose Backtrace input
// choices are directed by leakage observability. On success the new
// assignments stay committed; on failure every assignment made here is
// rolled back.
func (f *finder) justify(target netlist.NetID, want logic.Value) bool {
	type decision struct {
		net     netlist.NetID
		flipped bool
	}
	var stack []decision
	var touched []netlist.NetID
	backtracks := 0
	done := func(ok bool) bool {
		if f.opts.Observe.OnJustify != nil {
			f.opts.Observe.OnJustify(target, ok, backtracks)
		}
		return ok
	}
	rollback := func() {
		for _, n := range touched {
			f.assign[n] = logic.X
		}
		f.imply()
	}
	for {
		if f.cancelled() {
			rollback()
			return done(false)
		}
		f.imply()
		switch f.val[target] {
		case want:
			return done(true)
		case logic.X:
			n, v, ok := f.backtrace(target, want)
			if ok {
				stack = append(stack, decision{net: n})
				touched = append(touched, n)
				f.assign[n] = v
				continue
			}
			// No controlled X-path: conflict.
		}
		// Conflict (wrong binary value or dead-ended backtrace): flip the
		// most recent unflipped decision.
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				f.assign[top.net] = f.assign[top.net].Not()
				flipped = true
				break
			}
			f.assign[top.net] = logic.X
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			rollback()
			return done(false)
		}
		backtracks++
		if backtracks > f.opts.JustifyBacktracks {
			rollback()
			return done(false)
		}
	}
}

// backtrace maps the objective (target=want) to an assignable controlled
// input by walking X-paths toward the inputs. At each gate the next input
// is chosen among the don't-care inputs, preferring (under the
// observability directive) the line whose assignment to the propagated
// value is cheapest for leakage. Free (non-multiplexed) pseudo-inputs are
// dead ends.
func (f *finder) backtrace(target netlist.NetID, want logic.Value) (netlist.NetID, logic.Value, bool) {
	c := f.c
	n, v := target, want
	for {
		if f.controlled[n] {
			if f.assign[n] != logic.X {
				return 0, 0, false // already decided; cannot re-decide here
			}
			return n, v, true
		}
		if f.free[n] {
			return 0, 0, false
		}
		d := c.Nets[n].Driver
		if d == netlist.InvalidGate {
			return 0, 0, false
		}
		g := &c.Gates[d]
		if g.Type.Inverting() {
			v = v.Not()
		}
		// Candidate next hops: X-valued, non-free inputs.
		f.btCands = f.btCands[:0]
		for _, in := range g.Inputs {
			if f.val[in] == logic.X && !f.free[in] {
				f.btCands = append(f.btCands, in)
			}
		}
		if len(f.btCands) == 0 {
			return 0, 0, false
		}
		next := f.btCands[0]
		if f.ob != nil && len(f.btCands) > 1 && v.IsBinary() {
			next = f.btCands[f.ob.PickForValue(f.btCands, v == logic.One)]
		}
		n = next
	}
}
