// Package benchjson assembles the wide-kernel benchmark report that
// `make bench-wide` emits as BENCH_<date>_wide.json. Each kernel's
// benchmark test (power, obs, core, atpg) runs in its own `go test`
// process and folds its entries into the shared document with Merge, so
// the Makefile target can run them sequentially and end up with one
// report covering every packed kernel.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// Schema is the document identifier, shared with the other kernel-bench
// reports in the repo.
const Schema = "scanpower/kernel-bench/v1"

// Entry is one kernel-on-one-circuit measurement: wall times for the
// preserved pre-refactor 64-lane baseline and the compiled evaluator at
// both supported widths, plus the acceptance verdict.
type Entry struct {
	// Workload describes what was timed, precisely enough to re-run it.
	Workload string `json:"workload"`
	// ResultsMS holds best-of-N wall times in milliseconds, keyed
	// legacy64 / new64 / new256.
	ResultsMS map[string]float64 `json:"results_ms"`
	// SpeedupVsLegacy64 is legacy64 / new256.
	SpeedupVsLegacy64 float64 `json:"speedup_vs_legacy64"`
	// Criterion states the acceptance bar; Met records whether this
	// entry cleared it.
	Criterion string `json:"criterion"`
	Met       bool   `json:"met"`
}

// Report is the merged document. Kernels is keyed "<kernel>/<circuit>",
// e.g. "measure/s1423".
type Report struct {
	Schema    string           `json:"schema"`
	Label     string           `json:"label"`
	CreatedAt string           `json:"created_at"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	CPU       string           `json:"cpu"`
	Command   string           `json:"command"`
	Kernels   map[string]Entry `json:"kernels"`
}

// Merge folds entries into the report at path, creating the document on
// first use and preserving entries written by earlier processes. The
// bench tests run sequentially (one per `go test` invocation under
// `make bench-wide`), so plain read-modify-write is race-free.
func Merge(path string, entries map[string]Entry) error {
	var r Report
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("benchjson: existing %s is not a report: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	r.Schema = Schema
	r.Label = "wide-kernels-256-vs-legacy-64"
	r.CreatedAt = time.Now().Format("2006-01-02")
	r.GoVersion = runtime.Version()
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
	r.CPU = CPUModel()
	r.Command = "make bench-wide"
	if r.Kernels == nil {
		r.Kernels = map[string]Entry{}
	}
	for k, e := range entries {
		r.Kernels[k] = e
	}
	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MinMS runs fn rounds times and returns the fastest wall time in
// milliseconds — best-of-N is the standard noise filter for wall-clock
// kernel timing on a shared machine.
func MinMS(rounds int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// Round2 rounds to two decimals for stable report diffs.
func Round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}

// CPUModel best-effort reads the CPU model name for the report header.
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return "unknown"
}
