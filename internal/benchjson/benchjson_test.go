package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMergeAccumulates pins the cross-process contract of the bench-wide
// report: sequential Merge calls from different kernel tests build one
// document, later calls preserve earlier entries, and same-key entries
// are overwritten rather than duplicated.
func TestMergeAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wide.json")
	first := map[string]Entry{
		"measure/s1423": {
			Workload:          "256 patterns",
			ResultsMS:         map[string]float64{"legacy64": 10, "new256": 5},
			SpeedupVsLegacy64: 2,
			Criterion:         ">= 1.5x",
			Met:               true,
		},
	}
	if err := Merge(path, first); err != nil {
		t.Fatal(err)
	}
	second := map[string]Entry{
		"fill/s5378": {Workload: "256 trials", ResultsMS: map[string]float64{"legacy64": 8}},
		"measure/s1423": {
			Workload:          "256 patterns, rerun",
			ResultsMS:         map[string]float64{"legacy64": 9, "new256": 4},
			SpeedupVsLegacy64: 2.25,
			Met:               true,
		},
	}
	if err := Merge(path, second); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema || r.Command != "make bench-wide" {
		t.Errorf("header = %q %q", r.Schema, r.Command)
	}
	if len(r.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2: %v", len(r.Kernels), r.Kernels)
	}
	if got := r.Kernels["measure/s1423"]; got.Workload != "256 patterns, rerun" || got.SpeedupVsLegacy64 != 2.25 {
		t.Errorf("overwrite lost: %+v", got)
	}
	if got := r.Kernels["fill/s5378"]; got.ResultsMS["legacy64"] != 8 {
		t.Errorf("first-write entry lost: %+v", got)
	}
}

func TestMergeRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wide.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Merge(path, nil); err == nil {
		t.Error("Merge accepted a non-JSON existing file")
	}
}

func TestRound2(t *testing.T) {
	if got := Round2(1.2345); got != 1.23 {
		t.Errorf("Round2(1.2345) = %v", got)
	}
	if got := Round2(1.999); got != 2.0 {
		t.Errorf("Round2(1.999) = %v", got)
	}
}
