// Package timing implements the static timing analysis that decides which
// scan-cell outputs may receive a scan-mode multiplexer without degrading
// the circuit's normal-mode clock period (step 1 of the paper, AddMUX).
//
// The delay model is a simple but standard gate-level one: each library
// cell has an intrinsic delay that grows with fanin (series transistor
// stacks) and a load-dependent term proportional to the fanout count of
// its output net. Absolute picosecond values are unimportant for the
// algorithm — only the relative ordering of path delays matters.
package timing

import (
	"math"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// DelayModel gives per-cell delays in picoseconds.
type DelayModel struct {
	// Intrinsic delay per gate type at fanin 2 (fanin 1 for INV/BUF).
	Intrinsic map[logic.GateType]float64
	// PerFanin is added for each input beyond the base arity.
	PerFanin map[logic.GateType]float64
	// PerFanout is added for each reader of the output net beyond the first.
	PerFanout float64
	// FFSetup is the setup margin added at flop D pins (affects only the
	// absolute period, never the relative comparisons).
	FFSetup float64
}

// Default returns the 45 nm-flavored delay model used by all experiments.
// NOR is slower than NAND (stacked PMOS); delays grow with fanin.
func Default() DelayModel {
	return DelayModel{
		Intrinsic: map[logic.GateType]float64{
			logic.Not:  10,
			logic.Buf:  12,
			logic.Nand: 14,
			logic.Nor:  18,
			logic.And:  22, // pre-mapping composite cells
			logic.Or:   26,
			logic.Xor:  30,
			logic.Xnor: 32,
			logic.Mux2: 20,
		},
		PerFanin: map[logic.GateType]float64{
			logic.Not:  0,
			logic.Buf:  0,
			logic.Nand: 4,
			logic.Nor:  6,
			logic.And:  4,
			logic.Or:   6,
			logic.Xor:  12,
			logic.Xnor: 12,
			logic.Mux2: 0,
		},
		PerFanout: 2,
		FFSetup:   5,
	}
}

// GateDelay returns the delay of a gate of type t with the given fanin and
// output fanout count.
func (m DelayModel) GateDelay(t logic.GateType, fanin, fanout int) float64 {
	d := m.Intrinsic[t]
	base := 2
	if t == logic.Not || t == logic.Buf {
		base = 1
	}
	if t == logic.Mux2 {
		base = 3
	}
	if fanin > base {
		d += float64(fanin-base) * m.PerFanin[t]
	}
	if fanout > 1 {
		d += float64(fanout-1) * m.PerFanout
	}
	return d
}

// MuxDelay returns the penalty of a scan-mode MUX2 driving a single load.
func (m DelayModel) MuxDelay() float64 {
	return m.GateDelay(logic.Mux2, 3, 1)
}

// Analysis holds the results of one STA pass over a frozen circuit.
type Analysis struct {
	c     *netlist.Circuit
	model DelayModel

	// Arrival[n] is the latest signal arrival time at net n, measured from
	// the combinational inputs (PIs and flop outputs, arrival 0).
	Arrival []float64
	// Departure[n] is the longest delay from net n to any timing endpoint
	// (primary output or flop D pin, including setup).
	Departure []float64
	// Critical is the longest combinational path delay (the clock-period
	// lower bound).
	Critical float64
}

// Analyze runs STA on the frozen circuit c.
func Analyze(c *netlist.Circuit, model DelayModel) *Analysis {
	if !c.Frozen() {
		panic("timing: circuit must be frozen")
	}
	a := &Analysis{
		c:         c,
		model:     model,
		Arrival:   make([]float64, c.NumNets()),
		Departure: make([]float64, c.NumNets()),
	}
	gateDelay := make([]float64, c.NumGates())
	for gi := range c.Gates {
		g := &c.Gates[gi]
		out := &c.Nets[g.Output]
		fanout := len(out.Fanout) + len(out.FanoutFF)
		if out.IsPO() {
			fanout++
		}
		if fanout == 0 {
			fanout = 1
		}
		gateDelay[gi] = model.GateDelay(g.Type, len(g.Inputs), fanout)
	}
	// Forward pass: arrival times.
	topo := c.Topo()
	for _, gi := range topo {
		g := &c.Gates[gi]
		at := 0.0
		for _, in := range g.Inputs {
			if a.Arrival[in] > at {
				at = a.Arrival[in]
			}
		}
		a.Arrival[g.Output] = at + gateDelay[gi]
	}
	// Endpoint contributions and backward pass: departures.
	for ni := range c.Nets {
		n := &c.Nets[ni]
		d := math.Inf(-1)
		if n.IsPO() {
			d = 0
		}
		if len(n.FanoutFF) > 0 {
			if s := model.FFSetup; s > d {
				d = s
			}
		}
		a.Departure[ni] = d
	}
	for i := len(topo) - 1; i >= 0; i-- {
		gi := topo[i]
		g := &c.Gates[gi]
		outDep := a.Departure[g.Output]
		if math.IsInf(outDep, -1) {
			continue // dead-end net, no timing endpoint downstream
		}
		through := outDep + gateDelay[gi]
		for _, in := range g.Inputs {
			if through > a.Departure[in] {
				a.Departure[in] = through
			}
		}
	}
	// Critical path = max over nets of arrival+departure (equivalently max
	// over endpoints of arrival+endpoint margin).
	for ni := range c.Nets {
		if math.IsInf(a.Departure[ni], -1) {
			continue
		}
		if t := a.Arrival[ni] + a.Departure[ni]; t > a.Critical {
			a.Critical = t
		}
	}
	return a
}

// SlackAt returns the path slack through net n relative to the critical
// path: Critical - (Arrival[n] + Departure[n]). Nets with no downstream
// timing endpoint have infinite slack.
func (a *Analysis) SlackAt(n netlist.NetID) float64 {
	if math.IsInf(a.Departure[n], -1) {
		return math.Inf(1)
	}
	return a.Critical - (a.Arrival[n] + a.Departure[n])
}

// CriticalNets returns all nets lying on some critical path (slack below
// eps).
func (a *Analysis) CriticalNets(eps float64) []netlist.NetID {
	var out []netlist.NetID
	for ni := range a.c.Nets {
		if a.SlackAt(netlist.NetID(ni)) <= eps {
			out = append(out, netlist.NetID(ni))
		}
	}
	return out
}

// CriticalPath traces one maximal-delay path and returns its nets from a
// combinational input to a timing endpoint.
func (a *Analysis) CriticalPath() []netlist.NetID {
	c := a.c
	const eps = 1e-9
	// Find a zero-slack endpoint-reachable input net.
	start := netlist.InvalidNet
	for _, n := range c.CombInputs() {
		if a.SlackAt(n) <= eps {
			start = n
			break
		}
	}
	if start == netlist.InvalidNet {
		return nil
	}
	path := []netlist.NetID{start}
	cur := start
	for {
		next := netlist.InvalidNet
		for _, gi := range c.Nets[cur].Fanout {
			out := c.Gates[gi].Output
			if a.SlackAt(out) <= eps && a.Arrival[out] > a.Arrival[cur] {
				next = out
				break
			}
		}
		if next == netlist.InvalidNet {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// WouldMuxChangeCritical reports whether inserting a scan-mode MUX2 at
// pseudo-input net q would increase the critical path delay. This is the
// fast slack-based equivalent of the paper's literal
// "insert, re-run STA, remove if the delay changed" loop: adding muxDelay
// at q lengthens exactly the paths through q, so the critical delay grows
// iff muxDelay exceeds q's slack. (The MUX also sees the full fanout of q
// as load; that load term is what GateDelay models.)
func (a *Analysis) WouldMuxChangeCritical(q netlist.NetID) bool {
	n := &a.c.Nets[q]
	fanout := len(n.Fanout) + len(n.FanoutFF)
	if n.IsPO() {
		fanout++
	}
	if fanout == 0 {
		fanout = 1
	}
	muxDelay := a.model.GateDelay(logic.Mux2, 3, fanout)
	const eps = 1e-9
	return muxDelay > a.SlackAt(q)+eps
}
