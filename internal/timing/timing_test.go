package timing

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// chain builds PI -> NOT -> NOT -> ... -> PO with n inverters.
func chain(n int) *netlist.Circuit {
	c := netlist.New("chain")
	c.AddPI("in")
	prev := "in"
	for i := 0; i < n; i++ {
		name := "n" + string(rune('a'+i))
		c.AddGate(logic.Not, name, prev)
		prev = name
	}
	c.MarkPO(prev)
	c.MustFreeze()
	return c
}

func TestChainDelayAdds(t *testing.T) {
	m := Default()
	c := chain(3)
	a := Analyze(c, m)
	want := 3 * m.GateDelay(logic.Not, 1, 1)
	if math.Abs(a.Critical-want) > 1e-9 {
		t.Errorf("Critical = %v, want %v", a.Critical, want)
	}
	// Every net on the single path has zero slack.
	for ni := range c.Nets {
		if s := a.SlackAt(netlist.NetID(ni)); math.Abs(s) > 1e-9 {
			t.Errorf("net %s slack = %v, want 0", c.Nets[ni].Name, s)
		}
	}
}

// diamond: in feeds a long branch (3 NOTs) and a short branch (1 NOT),
// both into a NAND2 driving the PO. The short branch has slack.
func diamond() *netlist.Circuit {
	c := netlist.New("diamond")
	c.AddPI("in")
	c.AddGate(logic.Not, "l1", "in")
	c.AddGate(logic.Not, "l2", "l1")
	c.AddGate(logic.Not, "l3", "l2")
	c.AddGate(logic.Not, "s1", "in")
	c.AddGate(logic.Nand, "out", "l3", "s1")
	c.MarkPO("out")
	c.MustFreeze()
	return c
}

func TestDiamondSlack(t *testing.T) {
	m := Default()
	c := diamond()
	a := Analyze(c, m)
	inv := m.GateDelay(logic.Not, 1, 1)
	// "in" drives two gates, so the NOTs reading it see no extra delay,
	// but their own outputs have fanout 1.
	nand := m.GateDelay(logic.Nand, 2, 1)
	wantCrit := 3*inv + nand
	if math.Abs(a.Critical-wantCrit) > 1e-9 {
		t.Fatalf("Critical = %v, want %v", a.Critical, wantCrit)
	}
	s1, _ := c.NetByName("s1")
	if s := a.SlackAt(s1); math.Abs(s-2*inv) > 1e-9 {
		t.Errorf("slack(s1) = %v, want %v", s, 2*inv)
	}
	l3, _ := c.NetByName("l3")
	if s := a.SlackAt(l3); math.Abs(s) > 1e-9 {
		t.Errorf("slack(l3) = %v, want 0", s)
	}
}

func TestCriticalPathTrace(t *testing.T) {
	c := diamond()
	a := Analyze(c, Default())
	path := a.CriticalPath()
	if len(path) != 5 { // in, l1, l2, l3, out
		t.Fatalf("critical path has %d nets, want 5: %v", len(path), path)
	}
	names := make([]string, len(path))
	for i, n := range path {
		names[i] = c.Nets[n].Name
	}
	want := []string{"in", "l1", "l2", "l3", "out"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", names, want)
		}
	}
}

func TestFanoutLoadIncreasesDelay(t *testing.T) {
	m := Default()
	if m.GateDelay(logic.Nand, 2, 4) <= m.GateDelay(logic.Nand, 2, 1) {
		t.Error("fanout load does not increase delay")
	}
	if m.GateDelay(logic.Nand, 4, 1) <= m.GateDelay(logic.Nand, 2, 1) {
		t.Error("fanin does not increase delay")
	}
	if m.GateDelay(logic.Nor, 2, 1) <= m.GateDelay(logic.Nand, 2, 1) {
		t.Error("NOR should be slower than NAND (stacked PMOS)")
	}
}

// ffCircuit: two flops; q1 path to d1 is long, q2 path to d2 is short.
func ffCircuit() *netlist.Circuit {
	c := netlist.New("ffc")
	c.AddPI("a")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Not, "x1", "q1")
	c.AddGate(logic.Not, "x2", "x1")
	c.AddGate(logic.Nand, "d1", "x2", "a")
	c.AddGate(logic.Nand, "d2", "q2", "a")
	c.MustFreeze()
	return c
}

func TestFlopEndpointsAndSlack(t *testing.T) {
	m := Default()
	c := ffCircuit()
	a := Analyze(c, m)
	q1, _ := c.NetByName("q1")
	q2, _ := c.NetByName("q2")
	if a.SlackAt(q1) >= a.SlackAt(q2) {
		t.Errorf("slack(q1)=%v should be < slack(q2)=%v", a.SlackAt(q1), a.SlackAt(q2))
	}
	// Critical path must include the FF setup margin.
	inv := m.GateDelay(logic.Not, 1, 1)
	nand := m.GateDelay(logic.Nand, 2, 1)
	want := 2*inv + nand + m.FFSetup
	if math.Abs(a.Critical-want) > 1e-9 {
		t.Errorf("Critical = %v, want %v", a.Critical, want)
	}
}

func TestWouldMuxChangeCritical(t *testing.T) {
	c := ffCircuit()
	a := Analyze(c, Default())
	q1, _ := c.NetByName("q1")
	q2, _ := c.NetByName("q2")
	if !a.WouldMuxChangeCritical(q1) {
		t.Error("MUX at critical pseudo-input q1 should change the critical path")
	}
	if a.WouldMuxChangeCritical(q2) {
		t.Error("MUX at slack-rich pseudo-input q2 should be free")
	}
}

// TestMuxCheckAgreesWithLiteralReinsertion checks the fast slack-based MUX
// feasibility test against the paper's literal procedure: physically
// insert the MUX, re-run STA, compare critical delays.
func TestMuxCheckAgreesWithLiteralReinsertion(t *testing.T) {
	m := Default()
	for _, build := range []func() *netlist.Circuit{ffCircuit, seqMix} {
		c := build()
		a := Analyze(c, m)
		for fi, ff := range c.FFs {
			fast := a.WouldMuxChangeCritical(ff.Q)
			lit := literalMuxChanges(t, c, fi, m)
			if fast != lit {
				t.Errorf("%s flop %d: fast=%v literal=%v", c.Name, fi, fast, lit)
			}
		}
	}
}

// literalMuxChanges inserts a MUX2 after flop fi's Q in a clone and
// reports whether the critical delay grew.
func literalMuxChanges(t *testing.T, c *netlist.Circuit, fi int, m DelayModel) bool {
	t.Helper()
	before := Analyze(c, m).Critical
	// Rebuild the circuit with the flop output renamed and routed through
	// a MUX back to the old net name, so all readers see the MUX output.
	nb := netlist.New(c.Name + "_mux")
	for _, pi := range c.PIs {
		nb.AddPI(c.Nets[pi].Name)
	}
	nb.AddPI("const0")
	nb.AddPI("se")
	for fj, f2 := range c.FFs {
		q := c.Nets[f2.Q].Name
		if fj == fi {
			nb.AddFF(f2.Name, q+"_raw", c.Nets[f2.D].Name)
			nb.AddGate(logic.Mux2, q, q+"_raw", "const0", "se")
		} else {
			nb.AddFF(f2.Name, q, c.Nets[f2.D].Name)
		}
	}
	for _, g := range c.Gates {
		ins := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = c.Nets[in].Name
		}
		nb.AddGate(g.Type, c.Nets[g.Output].Name, ins...)
	}
	for _, po := range c.POs {
		nb.MarkPO(c.Nets[po].Name)
	}
	nb.MustFreeze()
	after := Analyze(nb, m).Critical
	return after > before+1e-9
}

// seqMix is a slightly larger sequential circuit with varied slacks.
func seqMix() *netlist.Circuit {
	c := netlist.New("seqmix")
	c.AddPI("a")
	c.AddPI("b")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddFF("f3", "q3", "d3")
	c.AddGate(logic.Nand, "t1", "q1", "a")
	c.AddGate(logic.Nor, "t2", "t1", "q2")
	c.AddGate(logic.Not, "t3", "t2")
	c.AddGate(logic.Nand, "t4", "t3", "b")
	c.AddGate(logic.Nand, "d1", "t4", "q3")
	c.AddGate(logic.Not, "d2", "t1")
	c.AddGate(logic.Not, "d3", "q3")
	c.MarkPO("t4")
	c.MustFreeze()
	return c
}

func TestDeadEndNetInfiniteSlack(t *testing.T) {
	c := netlist.New("dead")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "used", "a", "b")
	c.AddGate(logic.Not, "unused", "a") // feeds nothing
	c.MarkPO("used")
	c.MustFreeze()
	a := Analyze(c, Default())
	u, _ := c.NetByName("unused")
	if !math.IsInf(a.SlackAt(u), 1) {
		t.Errorf("dead-end net slack = %v, want +Inf", a.SlackAt(u))
	}
	if a.WouldMuxChangeCritical(u) {
		t.Error("MUX at dead-end net cannot change critical path")
	}
}

func TestAnalyzeOnParsedCircuit(t *testing.T) {
	src := `INPUT(G0)
INPUT(G1)
OUTPUT(o)
q = DFF(d)
n1 = NAND(G0, q)
d = NOR(n1, G1)
o = NOT(d)
`
	c, err := bench.ParseString(src, "mini")
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(c, Default())
	if a.Critical <= 0 {
		t.Error("critical delay should be positive")
	}
	if len(a.CriticalNets(1e-9)) == 0 {
		t.Error("no critical nets found")
	}
}
