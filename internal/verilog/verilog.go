// Package verilog reads and writes gate-level structural Verilog for the
// circuits this repository manipulates — the interchange format every
// downstream EDA flow speaks. The supported subset is primitive-only
// netlists:
//
//	module s27 (G0, G1, G17);
//	  input G0, G1;
//	  output G17;
//	  wire n1, n2;
//	  nand u1 (n1, G0, G1);   // output first, as for Verilog primitives
//	  not  u2 (G17, n1);
//	  dff  u3 (q, d);         // flop convention: (Q, D)
//	endmodule
//
// Comments (// and /* */) are stripped; statements end at ';'. The writer
// emits exactly this shape, and the round trip is tested to preserve the
// circuit.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Parse reads one structural module. If the source omits a module name,
// fallback is used.
func Parse(r io.Reader, fallback string) (*netlist.Circuit, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: read: %w", err)
	}
	src, err := stripComments(string(raw))
	if err != nil {
		return nil, err
	}
	stmts := splitStatements(src)
	c := netlist.New(fallback)
	seenModule := false
	ffCount := 0
	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch kw := strings.ToLower(fields[0]); kw {
		case "module":
			if seenModule {
				return nil, fmt.Errorf("verilog: multiple modules (only one supported)")
			}
			seenModule = true
			name := fields[1]
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			if name != "" {
				c.Name = name
			}
			// The port list itself carries no direction info; directions
			// come from input/output declarations.
		case "endmodule":
			// done; trailing statements ignored by splitStatements anyway
		case "input":
			for _, n := range declNames(st) {
				c.AddPI(n)
			}
		case "output":
			for _, n := range declNames(st) {
				c.MarkPO(n)
			}
		case "wire", "reg":
			for _, n := range declNames(st) {
				c.AddNet(n)
			}
		case "nand", "nor", "not", "and", "or", "xor", "xnor", "buf", "mux2", "dff":
			out, ins, err := instancePorts(st)
			if err != nil {
				return nil, err
			}
			if kw == "dff" {
				if len(ins) != 1 {
					return nil, fmt.Errorf("verilog: dff %q needs (Q, D)", st)
				}
				ffCount++
				c.AddFF(fmt.Sprintf("ff%d_%s", ffCount, out), out, ins[0])
				continue
			}
			gt, ok := logic.ParseGateType(strings.ToUpper(kw))
			if !ok {
				return nil, fmt.Errorf("verilog: unknown primitive %q", kw)
			}
			c.AddGate(gt, out, ins...)
		default:
			return nil, fmt.Errorf("verilog: unsupported statement %q", st)
		}
	}
	if !seenModule {
		return nil, fmt.Errorf("verilog: no module found")
	}
	if err := c.Freeze(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(src, fallback string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(src), fallback)
}

// stripComments removes // line and /* block */ comments.
func stripComments(src string) (string, error) {
	var out strings.Builder
	for i := 0; i < len(src); {
		if strings.HasPrefix(src[i:], "//") {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}
		if strings.HasPrefix(src[i:], "/*") {
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return "", fmt.Errorf("verilog: unterminated block comment")
			}
			i += 2 + end + 2
			out.WriteByte(' ')
			continue
		}
		out.WriteByte(src[i])
		i++
	}
	return out.String(), nil
}

// splitStatements splits on ';', keeping "endmodule" as its own
// statement (it has no terminating semicolon).
func splitStatements(src string) []string {
	var out []string
	for _, part := range strings.Split(src, ";") {
		// "endmodule" carries no semicolon, so it can glue to neighbours
		// on both sides; peel every occurrence off as its own statement.
		for {
			part = strings.TrimSpace(part)
			if part == "" {
				break
			}
			idx := strings.Index(strings.ToLower(part), "endmodule")
			if idx < 0 {
				out = append(out, part)
				break
			}
			if head := strings.TrimSpace(part[:idx]); head != "" {
				out = append(out, head)
			}
			out = append(out, "endmodule")
			part = part[idx+len("endmodule"):]
		}
	}
	return out
}

// declNames extracts the identifiers of an input/output/wire declaration.
func declNames(st string) []string {
	st = strings.TrimSpace(st)
	if i := strings.IndexAny(st, " \t\n"); i >= 0 {
		st = st[i:]
	}
	var out []string
	for _, n := range strings.Split(st, ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// instancePorts parses "prim name (out, in1, in2)" and returns the ports.
func instancePorts(st string) (string, []string, error) {
	open := strings.IndexByte(st, '(')
	close_ := strings.LastIndexByte(st, ')')
	if open < 0 || close_ < open {
		return "", nil, fmt.Errorf("verilog: malformed instance %q", st)
	}
	var ports []string
	for _, pp := range strings.Split(st[open+1:close_], ",") {
		pp = strings.TrimSpace(pp)
		if pp == "" {
			return "", nil, fmt.Errorf("verilog: empty port in %q", st)
		}
		ports = append(ports, pp)
	}
	if len(ports) < 2 {
		return "", nil, fmt.Errorf("verilog: instance %q needs at least 2 ports", st)
	}
	return ports[0], ports[1:], nil
}

// Write emits the circuit as one structural module.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, pi := range c.PIs {
		ports = append(ports, c.Nets[pi].Name)
	}
	for _, po := range c.POs {
		ports = append(ports, c.Nets[po].Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitizeName(c.Name), strings.Join(ports, ", "))
	writeDecl(bw, "input", c, c.PIs)
	writeDecl(bw, "output", c, c.POs)
	var wires []string
	for ni := range c.Nets {
		n := &c.Nets[ni]
		if n.IsPI() || n.IsPO() {
			continue
		}
		wires = append(wires, n.Name)
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for fi, ff := range c.FFs {
		fmt.Fprintf(bw, "  dff u_ff%d (%s, %s);\n",
			fi, c.Nets[ff.Q].Name, c.Nets[ff.D].Name)
	}
	for i, gi := range c.Topo() {
		g := &c.Gates[gi]
		prim := strings.ToLower(g.Type.String())
		names := make([]string, 0, len(g.Inputs)+1)
		names = append(names, c.Nets[g.Output].Name)
		for _, in := range g.Inputs {
			names = append(names, c.Nets[in].Name)
		}
		fmt.Fprintf(bw, "  %s u%d (%s);\n", prim, i, strings.Join(names, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func writeDecl(w io.Writer, kw string, c *netlist.Circuit, nets []netlist.NetID) {
	if len(nets) == 0 {
		return
	}
	names := make([]string, len(nets))
	for i, n := range nets {
		names[i] = c.Nets[n].Name
	}
	fmt.Fprintf(w, "  %s %s;\n", kw, strings.Join(names, ", "))
}

func sanitizeName(s string) string {
	if s == "" {
		return "top"
	}
	out := []byte(s)
	for i, ch := range out {
		ok := ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}
