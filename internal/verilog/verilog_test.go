package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/sim"
)

const sample = `// small sequential design
module demo (a, b, y);
  input a, b;
  output y;
  wire n1, n2, q, d;
  /* the flop */
  dff u0 (q, d);
  nand u1 (n1, a, q);
  nor  u2 (n2, n1, b);
  not  u3 (d, n2);
  nand u4 (y, n1, n2);
endmodule
`

func TestParseSample(t *testing.T) {
	c, err := ParseString(sample, "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Errorf("module name %q", c.Name)
	}
	st := c.ComputeStats()
	if st.PIs != 2 || st.POs != 1 || st.FFs != 1 || st.Gates != 4 {
		t.Errorf("stats %v", st)
	}
	if st.ByType[logic.Nand] != 2 || st.ByType[logic.Nor] != 1 || st.ByType[logic.Not] != 1 {
		t.Errorf("type histogram %v", st.ByType)
	}
}

func TestRoundTripEquivalence(t *testing.T) {
	orig, err := ParseString(sample, "x")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(sb.String(), "x")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	rng := rand.New(rand.NewSource(1))
	if err := sim.Equivalent(orig, back, 300, rng); err != nil {
		t.Fatalf("round trip not equivalent: %v", err)
	}
}

// TestBenchToVerilogBridge: a circuit parsed from .bench survives a trip
// through Verilog with function intact — the two formats interoperate.
func TestBenchToVerilogBridge(t *testing.T) {
	c := iscas.S27()
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(sb.String(), "s27")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := sim.Equivalent(c, back, 500, rng); err != nil {
		t.Fatalf("bench->verilog->parse broke s27: %v", err)
	}
	// And back out to .bench for good measure.
	var bb strings.Builder
	if err := bench.Write(&bb, back); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedBenchmarkRoundTrip(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(sb.String(), "s344")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != c.NumGates() || back.NumFFs() != c.NumFFs() {
		t.Errorf("size changed: %d/%d -> %d/%d",
			c.NumGates(), c.NumFFs(), back.NumGates(), back.NumFFs())
	}
	rng := rand.New(rand.NewSource(3))
	if err := sim.Equivalent(c, back, 200, rng); err != nil {
		t.Fatalf("not equivalent: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no module", "input a;\n"},
		{"two modules", "module a (x); input x; endmodule\nmodule b (y); input y; endmodule\n"},
		{"unknown stmt", "module m (a); input a; assign b = a; endmodule\n"},
		{"bad instance", "module m (a); input a; nand u1 a; endmodule\n"},
		{"one port", "module m (a); input a; nand u1 (a); endmodule\n"},
		{"dff arity", "module m (a); input a; wire q; dff u1 (q, a, a); endmodule\n"},
		{"empty port", "module m (a); input a; wire x; nand u1 (x, a, ); endmodule\n"},
		{"undriven", "module m (a, y); input a; output y; wire z; nand u1 (y, a, z); endmodule\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.src, "m"); err == nil {
				t.Errorf("accepted %q", c.src)
			}
		})
	}
}

func TestCommentStripping(t *testing.T) {
	src := "module m (a, y); // ports\ninput a; /* multi\nline */ output y;\nnot u1 (y, a);\nendmodule\n"
	c, err := ParseString(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Errorf("gates = %d", c.NumGates())
	}
	// Unterminated block comment swallows the rest (no crash).
	if _, err := ParseString("module m (a); /* oops", "m"); err == nil {
		t.Error("accepted module lost in comment")
	}
}

func TestSanitizedModuleName(t *testing.T) {
	c, err := ParseString("module m (a, y); input a; output y; not u1 (y, a); endmodule", "m")
	if err != nil {
		t.Fatal(err)
	}
	c.Name = "9bad name!"
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module _bad_name_ ") {
		t.Errorf("module name not sanitized:\n%s", sb.String())
	}
}
