// Package testability implements SCOAP (Sandia Controllability /
// Observability Analysis Program) metrics, the classic static testability
// measures: CC0(n)/CC1(n) estimate how many input assignments it takes to
// drive net n to 0/1, CO(n) how hard it is to observe n at an output.
// PODEM uses the controllability numbers to steer its backtrace toward
// the cheapest input assignments; DFT engineers use the observability
// numbers to spot hard-to-test regions.
package testability

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Analysis holds the SCOAP measures of one circuit, indexed by NetID.
// For full-scan circuits, primary inputs and scan-cell outputs are
// directly controllable (cost 1) and flop data inputs directly observable
// (cost 0).
type Analysis struct {
	CC0, CC1 []int
	CO       []int
}

// inf is a saturating "uncontrollable/unobservable" sentinel; additions
// clamp to it so arithmetic never overflows.
const inf = 1 << 28

func addSat(a, b int) int {
	s := a + b
	if s >= inf {
		return inf
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Compute runs the SCOAP passes over a frozen circuit: controllabilities
// forward in topological order, observabilities backward.
func Compute(c *netlist.Circuit) *Analysis {
	a := &Analysis{
		CC0: make([]int, c.NumNets()),
		CC1: make([]int, c.NumNets()),
		CO:  make([]int, c.NumNets()),
	}
	for n := range a.CC0 {
		a.CC0[n], a.CC1[n], a.CO[n] = inf, inf, inf
	}
	for _, pi := range c.PIs {
		a.CC0[pi], a.CC1[pi] = 1, 1
	}
	for _, q := range c.PseudoInputs() {
		a.CC0[q], a.CC1[q] = 1, 1
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		a.CC0[g.Output], a.CC1[g.Output] = gateControllability(a, g)
	}
	// Observability: endpoints first, then backward through the gates.
	for _, po := range c.POs {
		a.CO[po] = 0
	}
	for _, d := range c.PseudoOutputs() {
		a.CO[d] = 0
	}
	topo := c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		g := &c.Gates[topo[i]]
		for pin, in := range g.Inputs {
			if co := inputObservability(a, g, pin); co < a.CO[in] {
				a.CO[in] = co
			}
		}
	}
	return a
}

// gateControllability returns (CC0, CC1) of a gate's output.
func gateControllability(a *Analysis, g *netlist.Gate) (int, int) {
	switch g.Type {
	case logic.Buf:
		return addSat(a.CC0[g.Inputs[0]], 1), addSat(a.CC1[g.Inputs[0]], 1)
	case logic.Not:
		return addSat(a.CC1[g.Inputs[0]], 1), addSat(a.CC0[g.Inputs[0]], 1)
	case logic.And, logic.Nand:
		// Output of the AND core is 0 via any single 0 input, 1 via all 1s.
		min0 := inf
		sum1 := 1
		for _, in := range g.Inputs {
			min0 = minInt(min0, a.CC0[in])
			sum1 = addSat(sum1, a.CC1[in])
		}
		c0, c1 := addSat(min0, 1), sum1
		if g.Type == logic.Nand {
			return c1, c0
		}
		return c0, c1
	case logic.Or, logic.Nor:
		min1 := inf
		sum0 := 1
		for _, in := range g.Inputs {
			min1 = minInt(min1, a.CC1[in])
			sum0 = addSat(sum0, a.CC0[in])
		}
		c0, c1 := sum0, addSat(min1, 1)
		if g.Type == logic.Nor {
			return c1, c0
		}
		return c0, c1
	case logic.Xor, logic.Xnor:
		// Pairwise reduction: cost of producing even/odd parity.
		c0, c1 := a.CC0[g.Inputs[0]], a.CC1[g.Inputs[0]]
		for _, in := range g.Inputs[1:] {
			b0, b1 := a.CC0[in], a.CC1[in]
			n0 := minInt(addSat(c0, b0), addSat(c1, b1))
			n1 := minInt(addSat(c0, b1), addSat(c1, b0))
			c0, c1 = addSat(n0, 1), addSat(n1, 1)
		}
		if g.Type == logic.Xnor {
			return c1, c0
		}
		return c0, c1
	case logic.Mux2:
		d0, d1, s := g.Inputs[0], g.Inputs[1], g.Inputs[2]
		c0 := minInt(addSat(a.CC0[d0], a.CC0[s]), addSat(a.CC0[d1], a.CC1[s]))
		c1 := minInt(addSat(a.CC1[d0], a.CC0[s]), addSat(a.CC1[d1], a.CC1[s]))
		return addSat(c0, 1), addSat(c1, 1)
	}
	return inf, inf
}

// inputObservability returns the SCOAP observability of gate input pin:
// the gate output's observability plus the cost of setting every other
// input to the value that makes the pin visible.
func inputObservability(a *Analysis, g *netlist.Gate, pin int) int {
	out := a.CO[g.Output]
	if out >= inf {
		return inf
	}
	switch g.Type {
	case logic.Buf, logic.Not:
		return addSat(out, 1)
	case logic.And, logic.Nand:
		cost := addSat(out, 1)
		for i, in := range g.Inputs {
			if i != pin {
				cost = addSat(cost, a.CC1[in])
			}
		}
		return cost
	case logic.Or, logic.Nor:
		cost := addSat(out, 1)
		for i, in := range g.Inputs {
			if i != pin {
				cost = addSat(cost, a.CC0[in])
			}
		}
		return cost
	case logic.Xor, logic.Xnor:
		// Side inputs may take either value; pay the cheaper
		// controllability of each.
		cost := addSat(out, 1)
		for i, in := range g.Inputs {
			if i != pin {
				cost = addSat(cost, minInt(a.CC0[in], a.CC1[in]))
			}
		}
		return cost
	case logic.Mux2:
		d0, d1, s := g.Inputs[0], g.Inputs[1], g.Inputs[2]
		switch pin {
		case 0:
			return addSat(addSat(out, 1), a.CC0[s])
		case 1:
			return addSat(addSat(out, 1), a.CC1[s])
		default:
			// Select observable when the data inputs differ; cheapest
			// differing assignment.
			d := minInt(addSat(a.CC0[d0], a.CC1[d1]), addSat(a.CC1[d0], a.CC0[d1]))
			return addSat(addSat(out, 1), d)
		}
	}
	return inf
}

// Controllability returns the cost of setting net n to v.
func (a *Analysis) Controllability(n netlist.NetID, v bool) int {
	if v {
		return a.CC1[n]
	}
	return a.CC0[n]
}

// Uncontrollable reports whether no input assignment can produce v on n
// (per the SCOAP approximation).
func (a *Analysis) Uncontrollable(n netlist.NetID, v bool) bool {
	return a.Controllability(n, v) >= inf
}
