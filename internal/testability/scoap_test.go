package testability

import (
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestInverterChain(t *testing.T) {
	c := netlist.New("chain")
	c.AddPI("a")
	c.AddGate(logic.Not, "x", "a")
	c.AddGate(logic.Not, "y", "x")
	c.MarkPO("y")
	c.MustFreeze()
	a := Compute(c)
	aID, _ := c.NetByName("a")
	xID, _ := c.NetByName("x")
	yID, _ := c.NetByName("y")
	if a.CC0[aID] != 1 || a.CC1[aID] != 1 {
		t.Errorf("PI controllability should be 1/1, got %d/%d", a.CC0[aID], a.CC1[aID])
	}
	// x = NOT(a): CC0(x) = CC1(a)+1 = 2; y: 3.
	if a.CC0[xID] != 2 || a.CC1[xID] != 2 {
		t.Errorf("CC(x) = %d/%d, want 2/2", a.CC0[xID], a.CC1[xID])
	}
	if a.CC0[yID] != 3 {
		t.Errorf("CC0(y) = %d, want 3", a.CC0[yID])
	}
	// Observability grows toward the inputs: CO(y)=0, CO(x)=1, CO(a)=2.
	if a.CO[yID] != 0 || a.CO[xID] != 1 || a.CO[aID] != 2 {
		t.Errorf("CO = %d/%d/%d, want 2/1/0 toward output", a.CO[aID], a.CO[xID], a.CO[yID])
	}
}

func TestNandControllabilityAsymmetry(t *testing.T) {
	// x = NAND(a, b): 1 is cheap (any input 0), 0 needs both at 1.
	c := netlist.New("nand")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "x", "a", "b")
	c.MarkPO("x")
	c.MustFreeze()
	a := Compute(c)
	xID, _ := c.NetByName("x")
	if a.CC1[xID] != 2 { // min CC0 input + 1
		t.Errorf("CC1(NAND) = %d, want 2", a.CC1[xID])
	}
	if a.CC0[xID] != 3 { // 1 + CC1(a) + CC1(b)
		t.Errorf("CC0(NAND) = %d, want 3", a.CC0[xID])
	}
	// Observing a requires b=1: CO(a) = CO(x)+1+CC1(b) = 0+1+1 = 2.
	aID, _ := c.NetByName("a")
	if a.CO[aID] != 2 {
		t.Errorf("CO(a) = %d, want 2", a.CO[aID])
	}
}

func TestUncontrollableConstant(t *testing.T) {
	// y = AND(a, NOT(a)) is constant 0: SCOAP can't prove that (it is an
	// approximation ignoring reconvergence), but an undriven-from-inputs
	// region must saturate. Build a truly uncontrollable case: a gate fed
	// only through XOR of a net with itself is still "controllable" per
	// SCOAP, so instead check saturation arithmetic directly.
	if addSat(inf, 5) != inf || addSat(inf-1, inf) != inf {
		t.Error("saturating addition broken")
	}
	c := netlist.New("c")
	c.AddPI("a")
	c.AddGate(logic.Not, "x", "a")
	c.MarkPO("x")
	c.MustFreeze()
	a := Compute(c)
	xID, _ := c.NetByName("x")
	if a.Uncontrollable(xID, true) || a.Uncontrollable(xID, false) {
		t.Error("inverter output wrongly uncontrollable")
	}
}

func TestXorControllability(t *testing.T) {
	c := netlist.New("xor")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Xor, "x", "a", "b")
	c.MarkPO("x")
	c.MustFreeze()
	a := Compute(c)
	xID, _ := c.NetByName("x")
	// CC0 = min(0+0, 1+1 costs) + 1 = 1+1+1 = 3 with unit inputs.
	if a.CC0[xID] != 3 || a.CC1[xID] != 3 {
		t.Errorf("CC(XOR) = %d/%d, want 3/3", a.CC0[xID], a.CC1[xID])
	}
}

func TestMuxControllability(t *testing.T) {
	c := netlist.New("mux")
	c.AddPI("d0")
	c.AddPI("d1")
	c.AddPI("s")
	c.AddGate(logic.Mux2, "y", "d0", "d1", "s")
	c.MarkPO("y")
	c.MustFreeze()
	a := Compute(c)
	yID, _ := c.NetByName("y")
	// Cheapest way to any value: pick a side (1+1) + 1.
	if a.CC0[yID] != 3 || a.CC1[yID] != 3 {
		t.Errorf("CC(MUX) = %d/%d, want 3/3", a.CC0[yID], a.CC1[yID])
	}
	sID, _ := c.NetByName("s")
	// CO(select) = 1 + cheapest differing data assignment (1+1) = 3.
	if a.CO[sID] != 3 {
		t.Errorf("CO(select) = %d, want 3", a.CO[sID])
	}
}

func TestScanCellsAreControllablePoints(t *testing.T) {
	c := iscas.S27()
	a := Compute(c)
	for _, q := range c.PseudoInputs() {
		if a.CC0[q] != 1 || a.CC1[q] != 1 {
			t.Errorf("scan cell output %s not unit-controllable", c.Nets[q].Name)
		}
	}
	for _, d := range c.PseudoOutputs() {
		if a.CO[d] != 0 {
			t.Errorf("scan cell input %s not directly observable", c.Nets[d].Name)
		}
	}
	// Every net of s27 should be both controllable and observable.
	for ni := range c.Nets {
		if a.CC0[ni] >= inf || a.CC1[ni] >= inf {
			t.Errorf("net %s uncontrollable", c.Nets[ni].Name)
		}
		if a.CO[ni] >= inf {
			t.Errorf("net %s unobservable", c.Nets[ni].Name)
		}
	}
}

func TestDeepNetsCostMore(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	a := Compute(c)
	// Controllability must be weakly monotone along any driver chain:
	// an output costs at least as much as its cheapest needed input.
	for gi := range c.Gates {
		g := &c.Gates[gi]
		minIn := inf
		for _, in := range g.Inputs {
			if v := minInt(a.CC0[in], a.CC1[in]); v < minIn {
				minIn = v
			}
		}
		out := minInt(a.CC0[g.Output], a.CC1[g.Output])
		if out <= minIn && out < inf {
			// Output strictly cheaper than every input is impossible:
			// each gate adds at least 1.
			if out < addSat(minIn, 1) {
				t.Fatalf("gate %d: output cost %d below input floor %d", gi, out, minIn)
			}
		}
	}
}
