// Package bsim reproduces Section 3 of the paper at the device level: the
// BSIM subthreshold current model (Eq. 2–3), the Schuegraf–Hu direct
// gate-tunneling model (Eq. 4), and a DC solver for the series transistor
// stacks of NAND/NOR cells. The paper used HSPICE BSIM4 to characterize
// each library cell's leakage per input state and stored the results in
// tables; this package is the in-repo stand-in for that characterization
// step — it produces the same kind of per-state tables from first
// principles and exhibits the effects the flow exploits (stack effect,
// input-pattern dependence, exponential V_T and T_ox sensitivity).
//
// The calibrated behavioral tables in internal/leakage remain the source
// of truth for the experiments (they anchor Figure 2 exactly); this
// package validates their qualitative shape and documents where the
// numbers come from.
package bsim

import (
	"errors"
	"math"
)

// Physical constants.
const (
	// KOverQ is k/q in volts per kelvin.
	KOverQ = 8.617333262e-5
)

// DeviceType distinguishes NMOS from PMOS.
type DeviceType int

// Device types.
const (
	NMOS DeviceType = iota
	PMOS
)

// Device holds the BSIM-style parameters of one transistor.
type Device struct {
	Type DeviceType
	// VT0 is the zero-bias threshold voltage magnitude (V).
	VT0 float64
	// N is the subthreshold swing coefficient.
	N float64
	// Delta is the body-effect coefficient (V/V of source-bulk bias).
	Delta float64
	// Eta is the DIBL coefficient (V/V of drain bias).
	Eta float64
	// Mu0 is the zero-bias mobility (cm²/V·s).
	Mu0 float64
	// CoxFperCM2 is the gate oxide capacitance per unit area (F/cm²).
	CoxFperCM2 float64
	// WeffUM and LeffUM are the effective channel width/length (µm).
	WeffUM, LeffUM float64
	// TempK is the junction temperature (K).
	TempK float64
	// ToxNM is the oxide thickness (nm).
	ToxNM float64
	// PhiOxV is the tunneling barrier height (V): ~3.1 eV for electrons,
	// ~4.5 eV for holes.
	PhiOxV float64
	// Ag, Bg are the Schuegraf–Hu tunneling prefactor (A/V²) and
	// exponent constant (V/nm); Ag absorbs the gate area.
	Ag, Bg float64
	// RonOhm models a conducting (strong-inversion) device as a linear
	// resistor for the nA-level stack analysis.
	RonOhm float64
}

// Default45N returns representative 45 nm NMOS parameters.
func Default45N() Device {
	return Device{
		Type: NMOS, VT0: 0.22, N: 1.5, Delta: 0.08, Eta: 0.08,
		Mu0: 440, CoxFperCM2: 1.6e-6, WeffUM: 0.27, LeffUM: 0.045,
		TempK: 300, ToxNM: 1.1, PhiOxV: 3.1,
		Ag: 3.5e-6, Bg: 8, RonOhm: 2e3,
	}
}

// Default45P returns representative 45 nm PMOS parameters (wider device,
// lower mobility, hole tunneling barrier).
func Default45P() Device {
	return Device{
		Type: PMOS, VT0: 0.23, N: 1.5, Delta: 0.08, Eta: 0.07,
		Mu0: 190, CoxFperCM2: 1.6e-6, WeffUM: 0.54, LeffUM: 0.045,
		TempK: 300, ToxNM: 1.1, PhiOxV: 4.5,
		Ag: 2.0e-6, Bg: 12, RonOhm: 2.5e3,
	}
}

// thermalV returns kT/q (V).
func (d Device) thermalV() float64 { return KOverQ * d.TempK }

// A0 is Eq. 3: µ0·Cox·(Weff/Leff)·(kT/q)²·e^1.8, in amps.
func (d Device) A0() float64 {
	vt := d.thermalV()
	return d.Mu0 * d.CoxFperCM2 * (d.WeffUM / d.LeffUM) * vt * vt * math.Exp(1.8)
}

// Subthreshold evaluates Eq. 2 for the magnitude-space terminal voltages
// of the device (all arguments ≥ 0 and interpreted in the conducting
// polarity: for PMOS pass |VGS|, |VDS|, |VSB|). Result in amps.
func (d Device) Subthreshold(vgs, vds, vsb float64) float64 {
	vt := d.thermalV()
	exp := (vgs - d.VT0 - d.Delta*vsb + d.Eta*vds) / (d.N * vt)
	i := d.A0() * math.Exp(exp) * (1 - math.Exp(-vds/vt))
	if i < 0 {
		return 0
	}
	return i
}

// GateTunnel evaluates the Schuegraf–Hu direct-tunneling current (Eq. 4)
// for an oxide drop vox (V), in amps. Zero and negative drops tunnel
// nothing.
func (d Device) GateTunnel(vox float64) float64 {
	if vox <= 0 {
		return 0
	}
	if vox >= d.PhiOxV {
		vox = d.PhiOxV * 0.999 // FN regime clamp; scan-mode never reaches it
	}
	e := vox / d.ToxNM // field proxy, V/nm
	inner := 1 - math.Pow(1-vox/d.PhiOxV, 1.5)
	return d.Ag * e * e * math.Exp(-d.Bg*inner/e)
}

// currentAtVDS returns the channel current (amps) of the device with the
// given gate-source drive when vds (magnitude) is applied: subthreshold
// conduction for an off device, the linear Ron model for an on device.
func (d Device) currentAtVDS(vgs, vds, vsb float64) float64 {
	if vgs > d.VT0 {
		return vds / d.RonOhm
	}
	return d.Subthreshold(vgs, vds, vsb)
}

// vdsForCurrent inverts currentAtVDS by bisection on vds in [0, vmax].
// The current is strictly increasing in vds.
func (d Device) vdsForCurrent(i, vgs, vsb, vmax float64) float64 {
	lo, hi := 0.0, vmax
	for it := 0; it < 80; it++ {
		mid := (lo + hi) / 2
		if d.currentAtVDS(vgs, mid, vsb) < i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// StackResult is the DC solution of a blocked series stack.
type StackResult struct {
	// Current is the steady-state leakage through the stack (amps).
	Current float64
	// NodeV[k] is the voltage (above the source rail, magnitude space) at
	// the node between device k and device k+1; NodeV has len(devices)-1
	// entries, index 0 nearest the output.
	NodeV []float64
}

// SolveStack computes the leakage current of a series stack of devices
// between the output node (at vTop above the source rail, magnitude
// space) and the rail. devices[0] is nearest the output; gateOn[k] tells
// whether device k's gate drives it on (gate at the rail-opposite supply)
// or off (gate at the rail). It bisects on the stack current: for a guess
// I the node voltages integrate upward from the rail, and the resulting
// top voltage is monotone decreasing in I.
func SolveStack(devices []Device, gateOn []bool, vTop float64) (StackResult, error) {
	n := len(devices)
	if n == 0 || len(gateOn) != n {
		return StackResult{}, errors.New("bsim: bad stack spec")
	}
	if vTop <= 0 {
		return StackResult{Current: 0, NodeV: make([]float64, n-1)}, nil
	}
	vdd := vTop
	gateV := func(k int) float64 {
		if gateOn[k] {
			return vdd
		}
		return 0
	}
	// topVoltage(i) = Σ vds_k when each device carries current i.
	topVoltage := func(i float64) (float64, []float64) {
		nodes := make([]float64, 0, n-1)
		vs := 0.0 // source-side voltage of the current device
		for k := n - 1; k >= 0; k-- {
			vgs := gateV(k) - vs
			vds := devices[k].vdsForCurrent(i, vgs, vs, vdd*2)
			vs += vds
			if k > 0 {
				nodes = append([]float64{vs}, nodes...)
			}
		}
		return vs, nodes
	}
	// Bracket: at i -> 0 the top voltage tends to 0 (no drops);
	// at huge i it exceeds vTop. Find hi.
	lo := 0.0
	hi := 1e-12
	for it := 0; it < 80; it++ {
		v, _ := topVoltage(hi)
		if v >= vTop {
			break
		}
		hi *= 4
		if hi > 1 { // a conducting stack at amp level: clamp
			break
		}
	}
	for it := 0; it < 80; it++ {
		mid := (lo + hi) / 2
		v, _ := topVoltage(mid)
		if v < vTop {
			lo = mid
		} else {
			hi = mid
		}
	}
	i := (lo + hi) / 2
	_, nodes := topVoltage(i)
	return StackResult{Current: i, NodeV: nodes}, nil
}
