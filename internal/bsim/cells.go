package bsim

import (
	"fmt"
)

// Cell characterization: per-input-state leakage of the library cells,
// the device-level equivalent of the paper's HSPICE table generation.

// Tech bundles the device pair and supply of one technology corner.
type Tech struct {
	N, P Device
	VDD  float64
}

// Default45 returns the 45 nm / 0.9 V corner.
func Default45() Tech {
	return Tech{N: Default45N(), P: Default45P(), VDD: 0.9}
}

// InverterLeak returns the inverter leakage (amps) for input a.
func (t Tech) InverterLeak(a bool) float64 {
	if a {
		// Output 0: PMOS off at full |VDS|; NMOS on, channel at ground,
		// full oxide drop.
		sub := t.P.Subthreshold(0, t.VDD, 0)
		gate := t.N.GateTunnel(t.VDD)
		return sub + gate
	}
	// Output 1: NMOS off at full VDS; PMOS on with full oxide drop.
	sub := t.N.Subthreshold(0, t.VDD, 0)
	gate := t.P.GateTunnel(t.VDD)
	return sub + gate
}

// NANDLeak returns the leakage (amps) of an n-input NAND for the given
// input pattern; in[0] drives the NMOS nearest the output.
func (t Tech) NANDLeak(in []bool) (float64, error) {
	return t.seriesParallelLeak(in, true)
}

// NORLeak returns the leakage (amps) of an n-input NOR; in[0] drives the
// PMOS nearest the output.
func (t Tech) NORLeak(in []bool) (float64, error) {
	return t.seriesParallelLeak(in, false)
}

// seriesParallelLeak evaluates a NAND (nmosSeries) or NOR cell by solving
// its blocked series stack with SolveStack and adding parallel-network
// subthreshold and on-device gate tunneling.
func (t Tech) seriesParallelLeak(in []bool, nmosSeries bool) (float64, error) {
	n := len(in)
	if n < 1 {
		return 0, fmt.Errorf("bsim: empty input pattern")
	}
	var series, parallel Device
	if nmosSeries {
		series, parallel = t.N, t.P
	} else {
		series, parallel = t.P, t.N
	}
	// In magnitude space a series device is on when its input equals the
	// conducting level: 1 for NMOS, 0 for PMOS.
	gateOn := make([]bool, n)
	allOn := true
	for k, v := range in {
		on := v
		if !nmosSeries {
			on = !v
		}
		gateOn[k] = on
		if !on {
			allOn = false
		}
	}
	total := 0.0
	if allOn {
		// Stack conducts: output at the stack rail. Every parallel device
		// is off at full |VDS|; every series device tunnels with a full
		// oxide drop.
		total += float64(n) * parallel.Subthreshold(0, t.VDD, 0)
		total += float64(n) * series.GateTunnel(t.VDD)
		return total, nil
	}
	// Stack blocked: solve its subthreshold current with internal nodes.
	devs := make([]Device, n)
	for k := range devs {
		devs[k] = series
	}
	res, err := SolveStack(devs, gateOn, t.VDD)
	if err != nil {
		return 0, err
	}
	total += res.Current
	// Parallel network: at least one on device pins the output to its
	// rail, so off parallel devices see ~0 VDS (no subthreshold); each on
	// parallel device tunnels with a full oxide drop.
	for k, on := range gateOn {
		if !on { // series off => parallel twin on
			total += parallel.GateTunnel(t.VDD)
		}
		_ = k
	}
	// Series on-devices below the lowest off device sit with their
	// channel at the rail: full oxide drop tunneling. Nodes between/above
	// off devices float near the output; negligible drop.
	lowestOff := -1
	for k := n - 1; k >= 0; k-- {
		if !gateOn[k] {
			lowestOff = k
			break
		}
	}
	for k := lowestOff + 1; k < n; k++ {
		total += series.GateTunnel(t.VDD)
	}
	return total, nil
}

// NA converts amps to nanoamps.
func NA(amps float64) float64 { return amps * 1e9 }

// Table characterizes one cell over all input states, in nA; kind is
// "NAND", "NOR" or "INV".
func (t Tech) Table(kind string, arity int) ([]float64, error) {
	switch kind {
	case "INV":
		return []float64{NA(t.InverterLeak(false)), NA(t.InverterLeak(true))}, nil
	case "NAND", "NOR":
		if arity < 2 {
			return nil, fmt.Errorf("bsim: %s arity %d", kind, arity)
		}
		out := make([]float64, 1<<arity)
		in := make([]bool, arity)
		for bits := range out {
			for i := range in {
				in[i] = bits>>i&1 == 1
			}
			var (
				amps float64
				err  error
			)
			if kind == "NAND" {
				amps, err = t.NANDLeak(in)
			} else {
				amps, err = t.NORLeak(in)
			}
			if err != nil {
				return nil, err
			}
			out[bits] = NA(amps)
		}
		return out, nil
	}
	return nil, fmt.Errorf("bsim: unknown cell kind %q", kind)
}
