package bsim

import (
	"math"
	"testing"
)

func TestSubthresholdExponentialInVT(t *testing.T) {
	d := Default45N()
	base := d.Subthreshold(0, 0.9, 0)
	d.VT0 += 0.1 // 100 mV higher threshold
	raised := d.Subthreshold(0, 0.9, 0)
	// Eq. 2: ΔI = exp(ΔVT/(n·kT/q)) ≈ exp(0.1/0.0388) ≈ 13×.
	ratio := base / raised
	want := math.Exp(0.1 / (d.N * d.thermalV()))
	if math.Abs(ratio-want)/want > 0.01 {
		t.Errorf("VT sensitivity ratio %v, want %v", ratio, want)
	}
}

func TestSubthresholdDIBL(t *testing.T) {
	d := Default45N()
	low := d.Subthreshold(0, 0.45, 0)
	high := d.Subthreshold(0, 0.9, 0)
	if high <= low {
		t.Error("drain bias must increase subthreshold current (DIBL)")
	}
}

func TestSubthresholdBodyEffect(t *testing.T) {
	d := Default45N()
	nobody := d.Subthreshold(0, 0.9, 0)
	body := d.Subthreshold(0, 0.9, 0.3)
	if body >= nobody {
		t.Error("source-bulk bias must reduce subthreshold current")
	}
}

func TestSubthresholdNonNegativeAndZeroAtZeroVDS(t *testing.T) {
	d := Default45N()
	if d.Subthreshold(0, 0, 0) != 0 {
		t.Error("no VDS, no current")
	}
	if d.Subthreshold(-0.5, 0.9, 0) < 0 {
		t.Error("negative current")
	}
}

func TestGateTunnelExponentialInTox(t *testing.T) {
	d := Default45N()
	thick := d
	thick.ToxNM = d.ToxNM * 1.3
	thin := d.GateTunnel(0.9)
	thicker := thick.GateTunnel(0.9)
	if thin <= thicker*2 {
		t.Errorf("30%% thicker oxide should cut tunneling by far more than 2x: %v vs %v",
			thin, thicker)
	}
	if d.GateTunnel(0) != 0 || d.GateTunnel(-1) != 0 {
		t.Error("no oxide drop, no tunneling")
	}
	if d.GateTunnel(0.9) <= d.GateTunnel(0.45) {
		t.Error("tunneling must grow with Vox")
	}
}

func TestSolveStackSingleDeviceMatchesDirect(t *testing.T) {
	d := Default45N()
	res, err := SolveStack([]Device{d}, []bool{false}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	direct := d.Subthreshold(0, 0.9, 0)
	if math.Abs(res.Current-direct)/direct > 0.01 {
		t.Errorf("1-stack current %v, direct %v", res.Current, direct)
	}
	if len(res.NodeV) != 0 {
		t.Error("single device has no internal nodes")
	}
}

// TestStackEffect is the paper's core leakage physics: two off devices in
// series leak much less than one, because the internal node rises and
// gives the lower device negative VGS and body bias.
func TestStackEffect(t *testing.T) {
	d := Default45N()
	one, err := SolveStack([]Device{d}, []bool{false}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	two, err := SolveStack([]Device{d, d}, []bool{false, false}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := one.Current / two.Current; ratio < 3 {
		t.Errorf("stack suppression ratio %v, want > 3", ratio)
	}
	three, err := SolveStack([]Device{d, d, d}, []bool{false, false, false}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if three.Current >= two.Current {
		t.Error("deeper stacks must leak less")
	}
	// The internal node of the 2-stack floats at a small positive voltage.
	if len(two.NodeV) != 1 || two.NodeV[0] <= 0 || two.NodeV[0] > 0.45 {
		t.Errorf("2-stack internal node = %v, want small positive", two.NodeV)
	}
}

// TestSingleOffPositionDependence: one off device with an on device in
// series — the position of the off device changes its terminal biases
// (the off-near-rail case sits behind a source follower whose node rides
// at VDD−VT, the off-near-output case sees the full drain swing). The
// resulting currents must differ measurably: this is exactly why the
// paper's gate input reordering has something to optimize.
func TestSingleOffPositionDependence(t *testing.T) {
	d := Default45N()
	offTop, err := SolveStack([]Device{d, d}, []bool{false, true}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	offBottom, err := SolveStack([]Device{d, d}, []bool{true, false}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(offTop.Current-offBottom.Current) / offBottom.Current
	if diff < 0.05 {
		t.Errorf("positions leak %v vs %v — input order should matter (>5%%)",
			offTop.Current, offBottom.Current)
	}
}

func TestSolveStackValidation(t *testing.T) {
	if _, err := SolveStack(nil, nil, 0.9); err == nil {
		t.Error("accepted empty stack")
	}
	d := Default45N()
	if _, err := SolveStack([]Device{d}, []bool{false, true}, 0.9); err == nil {
		t.Error("accepted mismatched gateOn")
	}
	res, err := SolveStack([]Device{d}, []bool{false}, 0)
	if err != nil || res.Current != 0 {
		t.Error("zero supply should mean zero current")
	}
}

func TestNANDTableShape(t *testing.T) {
	tech := Default45()
	tab, err := tech.Table("NAND", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Indices: bit i = input i. 00=0, 10(A=0?): bit0=in0... Using in0 =
	// nearest output. States: 0b00 both off, 0b11 both on.
	if len(tab) != 4 {
		t.Fatalf("table size %d", len(tab))
	}
	for s, v := range tab {
		if v <= 0 || math.IsNaN(v) || v > 1e5 {
			t.Errorf("state %02b: implausible %v nA", s, v)
		}
	}
	// Physics the flow relies on:
	// (a) all-on is the worst state (parallel PMOS leak + NMOS tunneling);
	if !(tab[3] > tab[0] && tab[3] > tab[1] && tab[3] > tab[2]) {
		t.Errorf("NAND2 11 should be worst: %v", tab)
	}
	// (b) both-off (stacked) leaks less than either single-off state.
	if !(tab[0] < tab[1] && tab[0] < tab[2]) {
		t.Errorf("NAND2 00 should beat single-off states: %v", tab)
	}
}

func TestNORTableShape(t *testing.T) {
	tech := Default45()
	tab, err := tech.Table("NOR", 2)
	if err != nil {
		t.Fatal(err)
	}
	// NOR duals: all-zero input (both PMOS on, both NMOS off in parallel)
	// is worst; all-one (stacked off PMOS) among the best.
	if !(tab[0] > tab[3]) {
		t.Errorf("NOR2 00 should exceed 11: %v", tab)
	}
}

func TestInverterTable(t *testing.T) {
	tech := Default45()
	tab, err := tech.Table("INV", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab) != 2 || tab[0] <= 0 || tab[1] <= 0 {
		t.Fatalf("INV table %v", tab)
	}
	// Both states leak within an order of magnitude (single unstacked
	// device each side).
	ratio := tab[0] / tab[1]
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("INV state ratio implausible: %v", tab)
	}
}

func TestTableErrors(t *testing.T) {
	tech := Default45()
	if _, err := tech.Table("XOR", 2); err == nil {
		t.Error("accepted unknown cell")
	}
	if _, err := tech.Table("NAND", 1); err == nil {
		t.Error("accepted NAND1")
	}
	if _, err := tech.NANDLeak(nil); err == nil {
		t.Error("accepted empty pattern")
	}
}

// TestMagnitudesInNanoampRange sanity-checks absolute scale: a 45 nm
// device should leak tens to hundreds of nA per the paper's Figure 2.
func TestMagnitudesInNanoampRange(t *testing.T) {
	d := Default45N()
	i := NA(d.Subthreshold(0, 0.9, 0))
	if i < 10 || i > 2000 {
		t.Errorf("single off NMOS leaks %v nA; expected tens to hundreds", i)
	}
	g := NA(d.GateTunnel(0.9))
	if g < 0.5 || g > 500 {
		t.Errorf("gate tunneling %v nA; expected single to tens", g)
	}
}
