// Package iscas provides the benchmark circuits of the paper's Table I.
//
// The genuine ISCAS89 netlists are distribution-restricted artifacts that
// are not bundled here; instead this package generates, deterministically,
// synthetic full-scan circuits matched to each benchmark's published
// interface and size profile (primary inputs, primary outputs, flip-flops,
// gate count) over the same NAND/NOR/INV library the paper maps onto. The
// flows under test are structural — timing slack, controllability,
// justification, leakage state — so circuits with matching size,
// connectivity and depth statistics exercise identical code paths; see
// DESIGN.md for the substitution rationale. Genuine `.bench` files, when
// available, drop in through internal/bench.Parse.
//
// The real ISCAS89 s27 circuit (published in full in countless papers) is
// included verbatim for tests and examples.
package iscas

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// Profile describes one benchmark's published interface and size, plus a
// structural character parameter.
type Profile struct {
	Name  string
	PIs   int
	POs   int
	FFs   int
	Gates int
	Seed  int64
	// XORFrac is the fraction of the interior logic built as mapped XOR
	// networks (four reconvergent NAND2s). Transitions entering an XOR
	// cannot be blocked by any side-input value — the paper's s1196 and
	// s1238 (parity-rich c-series cores) show by far the smallest dynamic
	// improvements for exactly this reason, so the generator mirrors each
	// benchmark's known XOR richness.
	XORFrac float64
	// CritFrac is the fraction of flops whose outputs start a
	// deliberately deep XOR-ladder spine: those scan-cell outputs end up
	// on (or near) the critical path, so AddMUX must reject them, and the
	// XOR rungs carry their shift transitions unblockably through the
	// logic. This models the structural reality behind the paper's
	// per-circuit spread of dynamic improvements (s510/s1494 ≈ a few %,
	// s5378/s9234 ≈ 99 %) without access to the real netlists; DESIGN.md
	// documents the calibration.
	CritFrac float64
}

// Profiles lists the twelve ISCAS89 circuits of Table I with their
// published statistics.
var Profiles = []Profile{
	{"s344", 9, 11, 15, 160, 344, 0.05, 0.45},
	{"s382", 3, 6, 21, 158, 382, 0.05, 0.30},
	{"s444", 3, 6, 21, 181, 444, 0.05, 0.25},
	{"s510", 19, 7, 6, 211, 510, 0.30, 0.95},
	{"s641", 35, 24, 19, 379, 641, 0.10, 0.30},
	{"s713", 35, 23, 19, 393, 713, 0.10, 0.28},
	{"s1196", 14, 14, 18, 529, 1196, 0.40, 0.80},
	{"s1238", 14, 14, 18, 508, 1238, 0.40, 0.80},
	{"s1423", 17, 5, 74, 657, 1423, 0.08, 0.22},
	{"s1494", 8, 19, 6, 647, 1494, 0.30, 0.90},
	{"s5378", 35, 49, 179, 2779, 5378, 0.02, 0.02},
	{"s9234", 36, 39, 211, 5597, 9234, 0.03, 0.02},
}

// ByName returns the profile for a Table I circuit.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// gateMix is the library cell distribution of the generator, roughly the
// histogram of mapped ISCAS89 logic.
var gateMix = []struct {
	t      logic.GateType
	arity  int
	weight int
}{
	{logic.Not, 1, 22},
	{logic.Nand, 2, 30},
	{logic.Nor, 2, 24},
	{logic.Nand, 3, 10},
	{logic.Nor, 3, 7},
	{logic.Nand, 4, 4},
	{logic.Nor, 4, 3},
}

// Generate builds the synthetic circuit for profile p. The result is
// frozen, uses only NAND(2-4)/NOR(2-4)/INV cells, and is identical across
// runs and platforms for a given profile.
func Generate(p Profile) (*netlist.Circuit, error) {
	if p.PIs < 1 || p.FFs < 1 || p.Gates < p.POs+p.FFs {
		return nil, fmt.Errorf("iscas: implausible profile %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := netlist.New(p.Name)

	// Driver pool in creation order; unread tracks nets without fanout yet.
	var pool []string
	unread := make(map[string]bool)
	addDriver := func(name string) {
		pool = append(pool, name)
		unread[name] = true
	}
	for i := 0; i < p.PIs; i++ {
		name := fmt.Sprintf("PI%d", i)
		c.AddPI(name)
		addDriver(name)
	}
	for i := 0; i < p.FFs; i++ {
		q := fmt.Sprintf("Q%d", i)
		d := fmt.Sprintf("D%d", i)
		c.AddFF(fmt.Sprintf("ff%d", i), q, d)
		addDriver(q)
	}

	totalWeight := 0
	for _, m := range gateMix {
		totalWeight += m.weight
	}
	pickType := func() (logic.GateType, int) {
		w := rng.Intn(totalWeight)
		for _, m := range gateMix {
			if w < m.weight {
				return m.t, m.arity
			}
			w -= m.weight
		}
		return logic.Nand, 2
	}
	// arr holds a conservative arrival-time estimate (ps) per pool net,
	// used to keep the random logic's depth safely below the critical
	// spines built for CritFrac (see below). Spine delays are estimated
	// tightly, natural logic pessimistically (fanout-4 loads).
	arr := make(map[string]float64)
	dm := timing.Default()
	natDelay := func(gt logic.GateType, arity int) float64 {
		return dm.GateDelay(gt, arity, 4)
	}
	const window = 40 // locality window for input selection
	pickInput := func(used map[string]bool, maxArr float64) string {
		for tries := 0; ; tries++ {
			var cand string
			switch {
			case tries < 2 && len(unread) > 0 && rng.Intn(100) < 35:
				// Bias toward unread nets so dead logic stays rare.
				k := rng.Intn(len(pool))
				for off := 0; off < len(pool); off++ {
					n := pool[(k+off)%len(pool)]
					if unread[n] && arr[n] <= maxArr {
						cand = n
						break
					}
				}
			case rng.Intn(100) < 70 && len(pool) > window:
				cand = pool[len(pool)-1-rng.Intn(window)]
			default:
				cand = pool[rng.Intn(len(pool))]
			}
			if cand == "" || used[cand] || arr[cand] > maxArr {
				if tries > 12 {
					// Fall back to any unused, shallow-enough pool entry;
					// primary inputs (arrival 0) always qualify.
					for _, n := range pool {
						if !used[n] && arr[n] <= maxArr {
							return n
						}
					}
					return pool[0]
				}
				continue
			}
			return cand
		}
	}

	// Reserve the last gates to drive the D inputs and POs directly.
	reserved := p.FFs + p.POs
	interior := p.Gates - reserved
	gi := 0
	emitted := 0

	// xorBlock emits the mapped four-NAND2 XOR network over a and b and
	// returns the output net name. The rung delay estimate is exact for
	// the chain topology (n1 drives two loads, n2/n3 one each).
	xorRungDelay := dm.GateDelay(logic.Nand, 2, 2) + 2*dm.GateDelay(logic.Nand, 2, 1)
	xorBlock := func(a, b string) string {
		n1 := fmt.Sprintf("n%d", gi)
		n2 := fmt.Sprintf("n%d", gi+1)
		n3 := fmt.Sprintf("n%d", gi+2)
		out := fmt.Sprintf("n%d", gi+3)
		c.AddGate(logic.Nand, n1, a, b)
		c.AddGate(logic.Nand, n2, a, n1)
		c.AddGate(logic.Nand, n3, b, n1)
		c.AddGate(logic.Nand, out, n2, n3)
		delete(unread, a)
		delete(unread, b)
		aMax := arr[a]
		if arr[b] > aMax {
			aMax = arr[b]
		}
		arr[out] = aMax + xorRungDelay
		gi += 4
		emitted += 4
		return out
	}

	// Critical spines: CritFrac of the flops feed deep XOR ladders whose
	// root is a NAND over up to four such flop outputs. Those scan-cell
	// outputs sit on the critical path (AddMUX must reject them) and the
	// root gate has no assignable side input, so the ladder carries their
	// shift transitions unblockably through the logic.
	nCrit := int(p.CritFrac*float64(p.FFs) + 0.5)
	if nCrit > p.FFs {
		nCrit = p.FFs
	}
	deepSpines := p.CritFrac >= 0.15
	natCap := math.Inf(1)
	if nCrit > 0 && interior >= 24 {
		numLadders := (nCrit + 3) / 4
		budget := interior * int(math.Min(85, p.CritFrac*100)) / 100
		rungs := (budget/numLadders - 1) / 4
		if !deepSpines {
			if target := 10 + p.Gates/300; rungs > target {
				rungs = target
			}
		}
		if deepSpines && rungs < 7 {
			rungs = 7
		}
		if rungs < 2 {
			rungs = 2
		}
		spineArr := 0.0
		for l := 0; l < numLadders; l++ {
			// Root: NAND over this ladder's critical flop outputs.
			var roots []string
			for q := 4 * l; q < 4*(l+1) && q < nCrit; q++ {
				roots = append(roots, fmt.Sprintf("Q%d", q))
			}
			if len(roots) == 1 {
				roots = append(roots, "PI0")
			}
			rootOut := fmt.Sprintf("n%d", gi)
			c.AddGate(logic.Nand, rootOut, roots...)
			for _, r := range roots {
				delete(unread, r)
			}
			arr[rootOut] = dm.GateDelay(logic.Nand, len(roots), 2)
			gi++
			emitted++
			prev := rootOut
			for r := 0; r < rungs; r++ {
				used := map[string]bool{prev: true}
				// Side inputs must stay shallower than the spine so the
				// ladder remains the longest path from its flops.
				side := pickInput(used, arr[prev])
				prev = xorBlock(prev, side)
			}
			addDriver(prev) // the spine output joins the pool unread
			if arr[prev] > spineArr {
				spineArr = arr[prev]
			}
		}
		if deepSpines {
			natCap = spineArr - 150
			if natCap < 60 {
				natCap = 60
			}
		}
	}

	for emitted < interior {
		// XOR blocks: the mapped four-NAND2 reconvergent network of a
		// 2-input XOR, through which transitions always propagate.
		if interior-emitted >= 4 && rng.Float64() < p.XORFrac/4 {
			used := make(map[string]bool, 2)
			a := pickInput(used, natCap)
			used[a] = true
			b := pickInput(used, natCap)
			out := xorBlock(a, b)
			// The inner nets are fully consumed inside the block; only
			// the XOR output joins the pool.
			addDriver(out)
			continue
		}
		gt, arity := pickType()
		if arity > len(pool) {
			arity = 2
		}
		used := make(map[string]bool, arity)
		ins := make([]string, 0, arity)
		inArr := 0.0
		for len(ins) < arity {
			n := pickInput(used, natCap)
			used[n] = true
			ins = append(ins, n)
			if arr[n] > inArr {
				inArr = arr[n]
			}
		}
		out := fmt.Sprintf("n%d", gi)
		c.AddGate(gt, out, ins...)
		for _, n := range ins {
			delete(unread, n)
		}
		arr[out] = inArr + natDelay(gt, arity)
		addDriver(out)
		gi++
		emitted++
	}
	// Terminal gates: one per flop D and one per PO, consuming unread
	// nets first so (almost) everything is observable.
	terminal := func(out string) {
		gt, arity := pickType()
		if gt == logic.Not {
			gt, arity = logic.Nand, 2
		}
		used := make(map[string]bool, arity)
		ins := make([]string, 0, arity)
		// Consume unread nets in pool (creation) order for determinism.
		for _, n := range pool {
			if len(ins) >= arity-1 {
				break
			}
			if unread[n] && !used[n] {
				used[n] = true
				ins = append(ins, n)
			}
		}
		for len(ins) < arity {
			n := pickInput(used, natCap)
			used[n] = true
			ins = append(ins, n)
		}
		c.AddGate(gt, out, ins...)
		for _, n := range ins {
			delete(unread, n)
		}
		addDriver(out)
		delete(unread, out)
	}
	for i := 0; i < p.FFs; i++ {
		terminal(fmt.Sprintf("D%d", i))
	}
	for i := 0; i < p.POs; i++ {
		out := fmt.Sprintf("PO%d", i)
		terminal(out)
		c.MarkPO(out)
	}
	if err := c.Freeze(); err != nil {
		return nil, fmt.Errorf("iscas: generated circuit invalid: %w", err)
	}
	return c, nil
}

// s27Source is the genuine ISCAS89 s27 benchmark.
const s27Source = `# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// S27 returns the real ISCAS89 s27 circuit.
func S27() *netlist.Circuit {
	c, err := bench.ParseString(s27Source, "s27")
	if err != nil {
		panic("iscas: embedded s27 failed to parse: " + err.Error())
	}
	return c
}
