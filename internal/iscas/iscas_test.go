package iscas

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/techmap"
	"repro/internal/timing"
)

func TestProfilesMatchPublishedStats(t *testing.T) {
	want := map[string][4]int{ // PI, PO, FF, gates
		"s344": {9, 11, 15, 160}, "s382": {3, 6, 21, 158},
		"s444": {3, 6, 21, 181}, "s510": {19, 7, 6, 211},
		"s641": {35, 24, 19, 379}, "s713": {35, 23, 19, 393},
		"s1196": {14, 14, 18, 529}, "s1238": {14, 14, 18, 508},
		"s1423": {17, 5, 74, 657}, "s1494": {8, 19, 6, 647},
		"s5378": {35, 49, 179, 2779}, "s9234": {36, 39, 211, 5597},
	}
	if len(Profiles) != len(want) {
		t.Fatalf("have %d profiles, want %d", len(Profiles), len(want))
	}
	for _, p := range Profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %s", p.Name)
			continue
		}
		if p.PIs != w[0] || p.POs != w[1] || p.FFs != w[2] || p.Gates != w[3] {
			t.Errorf("%s profile = %+v, want %v", p.Name, p, w)
		}
	}
}

func TestGenerateMatchesProfile(t *testing.T) {
	for _, p := range Profiles {
		if p.Gates > 1000 {
			continue // big ones covered by TestGenerateLargest
		}
		c, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := c.ComputeStats()
		if st.PIs != p.PIs || st.POs != p.POs || st.FFs != p.FFs || st.Gates != p.Gates {
			t.Errorf("%s: generated %v, want profile %+v", p.Name, st, p)
		}
		if !techmap.IsMapped(c, 4) {
			t.Errorf("%s: not library-only", p.Name)
		}
		if st.Depth < 3 {
			t.Errorf("%s: depth %d implausibly shallow", p.Name, st.Depth)
		}
	}
}

func TestGenerateLargest(t *testing.T) {
	p, ok := ByName("s9234")
	if !ok {
		t.Fatal("s9234 profile missing")
	}
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Gates != p.Gates || st.FFs != p.FFs {
		t.Errorf("s9234 stats %v", st)
	}
	// Timing must show a mix of critical and slack-rich pseudo-inputs so
	// AddMUX has real decisions to make.
	a := timing.Analyze(c, timing.Default())
	if a.Critical <= 0 {
		t.Fatal("no critical path")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("s344")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Canonical(a) != bench.Canonical(b) {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateMostNetsObservable(t *testing.T) {
	p, _ := ByName("s641")
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for ni := range c.Nets {
		n := &c.Nets[ni]
		if !n.IsPO() && len(n.Fanout) == 0 && len(n.FanoutFF) == 0 {
			dead++
		}
	}
	if frac := float64(dead) / float64(c.NumNets()); frac > 0.05 {
		t.Errorf("%.1f%% of nets are dead; generator should keep logic observable", frac*100)
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	if _, err := Generate(Profile{Name: "bad", PIs: 0, FFs: 1, Gates: 10}); err == nil {
		t.Error("accepted zero-PI profile")
	}
	if _, err := Generate(Profile{Name: "bad", PIs: 2, FFs: 2, POs: 9, Gates: 5}); err == nil {
		t.Error("accepted gates < terminals")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("s344"); !ok {
		t.Error("s344 missing")
	}
	if _, ok := ByName("s99999"); ok {
		t.Error("found nonexistent circuit")
	}
}

func TestS27IsReal(t *testing.T) {
	c := S27()
	st := c.ComputeStats()
	if st.PIs != 4 || st.POs != 1 || st.FFs != 3 || st.Gates != 10 {
		t.Errorf("embedded s27 stats wrong: %v", st)
	}
}

// TestCritFracControlsMuxability pins the critical-spine mechanism: the
// generated s510 (CritFrac 0.95) must leave AddMUX almost nothing to mux,
// while s5378 (CritFrac 0.02) must be nearly fully muxable — this is the
// structural property behind the paper's per-circuit spread of dynamic
// improvements.
func TestCritFracControlsMuxability(t *testing.T) {
	count := func(name string) (muxable, ffs int) {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		c, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		a := timing.Analyze(c, timing.Default())
		for _, ff := range c.FFs {
			if !a.WouldMuxChangeCritical(ff.Q) {
				muxable++
			}
		}
		return muxable, c.NumFFs()
	}
	if m, n := count("s510"); m > n/3 {
		t.Errorf("s510: %d/%d muxable, want almost none (CritFrac 0.95)", m, n)
	}
	if m, n := count("s5378"); m < n*9/10 {
		t.Errorf("s5378: %d/%d muxable, want nearly all (CritFrac 0.02)", m, n)
	}
	if m, n := count("s1196"); m > n*2/3 {
		t.Errorf("s1196: %d/%d muxable, want a clear minority unmuxable at least (CritFrac 0.8)", m, n)
	}
}
