# Tier-1 gate for this repository. `make check` is what CI runs on every
# change; `make race` is required for anything touching the Engine's
# worker pool or pattern cache.

GO ?= go

.PHONY: check build vet test race bench

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine acceptance benchmark: sequential vs GOMAXPROCS Table I.
bench:
	$(GO) test -run=NONE -bench=BenchmarkTableOne -benchtime=1x .
