# Tier-1 gate for this repository. `make check` is what CI runs on every
# change; `make race` is required for anything touching the Engine's
# worker pool or pattern cache.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: check build vet test race bench bench-json telemetry-race

check: vet build test race telemetry-race bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine acceptance benchmark: sequential vs GOMAXPROCS Table I.
bench:
	$(GO) test -run=NONE -bench=BenchmarkTableOne -benchtime=1x .

# Machine-readable perf trajectory: a small Table I run whose manifest
# (environment, per-stage wall times, counters, results) lands in
# BENCH_<date>.json for cross-commit comparison.
bench-json:
	$(GO) run ./cmd/tableone -circuits s344,s382,s444 -manifest BENCH_$(DATE).json >/dev/null

# The telemetry path under the race detector: concurrent Engine workers
# feeding one Recorder, registry, and trace writer.
telemetry-race:
	$(GO) test -race -run 'Telemetry|Recorder|Trace|Registry' . ./internal/telemetry/
