# Tier-1 gate for this repository. `make check` is what CI runs on every
# change; `make race` is required for anything touching the Engine's
# worker pool or pattern cache.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: check build vet test race atpg-race bench bench-json telemetry-race wide-race fuzz-equiv bench-kernels bench-mc bench-atpg bench-wide api-compat serve-smoke loadsmoke obs-smoke bench-cluster

check: vet build test race atpg-race telemetry-race wide-race fuzz-equiv api-compat bench-json serve-smoke loadsmoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-parallel ATPG scheduler under the race detector: worker
# bit-identity at several worker counts, the MaxPodemFaults cap with
# in-flight speculation, and the engine's worker-normalized pattern cache.
atpg-race:
	$(GO) test -race -run 'Workers|Podem|Scheduler|DetectAllMask|RandomPhase' ./internal/atpg/ .

# Engine acceptance benchmark: sequential vs GOMAXPROCS Table I.
bench:
	$(GO) test -run=NONE -bench=BenchmarkTableOne -benchtime=1x .

# Machine-readable perf trajectory: a small Table I run whose manifest
# (environment, per-stage wall times, counters, results) lands in
# BENCH_<date>.json for cross-commit comparison.
bench-json:
	$(GO) run ./cmd/tableone -circuits s344,s382,s444 -manifest BENCH_$(DATE).json >/dev/null

# The telemetry path under the race detector: concurrent Engine workers
# feeding one Recorder, registry, and trace writer. The Packed kernel,
# packed Monte-Carlo, hook-pairing and scanpowerd service tests ride along
# so the bit-parallel paths and the job queue are raced too.
telemetry-race:
	$(GO) test -race -run 'Telemetry|Recorder|Trace|Registry|Packed|StageHooks|PatternCache|Submit|Queue|Coalesc|Drain|Deadline|Disconnect|Cancel|MCPacked|MCBatch|MCBackend' . ./internal/telemetry/ ./internal/power/ ./internal/service/ ./internal/obs/ ./internal/core/

# The 256-lane compiled kernels under the race detector: the Compile
# lowering property test, the wide-vs-scalar and width-invariance
# equivalence suites, and the lane-width plumbing of every packed
# consumer (measure, obs, fill, faultsim, leakage accumulators).
wide-race:
	$(GO) test -race -run 'Wide|Compile|Lane|PackedW|FaultSimW|MeasureScanPacked|EstimatePacked|FillPacked' ./internal/sim/ ./internal/leakage/ ./internal/power/ ./internal/obs/ ./internal/core/ ./internal/atpg/

# Wire-compatibility gate for the v1 job API: golden JSON fixtures under
# api/testdata round-tripped through the repro/api marshallers and the
# shared validator, so a refactor that moves a byte on the wire — field
# renamed, omitempty dropped, error message reworded — fails here before
# it ships. Regenerate intentionally with:
#   go test ./api/ -run TestAPICompat -update
api-compat:
	$(GO) test ./api/ -run 'TestAPICompat|TestValidate' -count=1

# Full service contract against a real scanpowerd process: boots the
# daemon on a random port, checks the inline-c17 result is bit-identical
# to an in-process Engine run, exercises 429 backpressure and DELETE, and
# requires a clean SIGTERM drain with a balanced span trace.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Cluster contract against real scanpowerd processes: single-node cold
# baseline, 3-node sharded cluster under the same load, mixed traffic
# with one node SIGKILLed and restarted on its result store (must serve
# a first-life result bit-identically from disk, no ATPG recompute),
# and a clean SIGTERM drain of every node. Short traffic windows here;
# `make bench-cluster` is the full-length run.
loadsmoke:
	$(GO) run ./scripts/loadsmoke -short

# Observability contract against a real 3-node cluster: a forwarded job's
# merged trace spans >= 2 nodes under one trace ID (queried from both the
# owner and the forwarding node), a client traceparent is adopted, and
# the fused /v1/cluster/metrics counters and submit-histogram buckets are
# bit-exact sums of the per-node /v1/node/metrics snapshots.
obs-smoke:
	$(GO) run ./scripts/obssmoke

# Full-length cluster benchmark: throughput/latency percentiles of the
# single node vs the 3-node cluster land in BENCH_<date>_cluster.json.
# The cold-scaling bar (>= 2x) is enforced on hosts with >= 3 CPUs.
bench-cluster:
	$(GO) run ./scripts/loadsmoke -out BENCH_$(DATE)_cluster.json

# Short packed-vs-serial equivalence fuzz: random circuits, pattern sets
# and shift configs through both measurement kernels (bit-equal reports),
# then random circuits and flow shapes through both Monte-Carlo backends
# (bit-equal solutions). The seed corpora also run on every plain `go test`.
fuzz-equiv:
	$(GO) test ./internal/sim/ -run '^$$' -fuzz FuzzWideEquivalence -fuzztime 10s
	$(GO) test ./internal/power/ -run '^$$' -fuzz FuzzMeasureScanPackedEquivalence -fuzztime 10s
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzMCPackedEquivalence -fuzztime 10s
	$(GO) test ./internal/atpg/ -run '^$$' -fuzz FuzzFaultSimEquivalence -fuzztime 10s

# Kernel comparison benchmark: dense vs event-driven vs packed on an
# ISCAS stream with 64 patterns (acceptance: packed >= 5x fast).
bench-kernels:
	$(GO) test ./internal/power/ -run '^$$' -bench BenchmarkScanKernels -benchtime 2s

# Monte-Carlo kernel comparison: scalar vs 64-way packed observability
# estimation and don't-care fill on s1423 (acceptance: packed obs >= 5x
# scalar at >= 1024 samples; see BENCH_<date>_mc.json).
bench-mc:
	$(GO) test ./internal/obs/ -run '^$$' -bench BenchmarkObsKernels -benchtime 2s
	$(GO) test ./internal/core/ -run '^$$' -bench BenchmarkFillKernels -benchtime 2s

# Wide-kernel benchmark: the four packed kernels (measure, obs, fill,
# faultsim) at 64 vs 256 lanes against their preserved pre-refactor
# 64-lane baselines on s1423/s5378; per-kernel best-of-5 timings land in
# BENCH_<date>_wide.json (acceptance: new256 >= 1.5x per kernel). Each
# run starts a fresh report.
bench-wide:
	rm -f BENCH_$(DATE)_wide.json
	WIDE_BENCH_OUT=$(CURDIR)/BENCH_$(DATE)_wide.json $(GO) test ./internal/power/ -run TestBenchWideMeasureJSON -count=1 -v
	WIDE_BENCH_OUT=$(CURDIR)/BENCH_$(DATE)_wide.json $(GO) test ./internal/obs/ -run TestBenchWideObsJSON -count=1 -v
	WIDE_BENCH_OUT=$(CURDIR)/BENCH_$(DATE)_wide.json $(GO) test ./internal/core/ -run TestBenchWideFillJSON -count=1 -v
	WIDE_BENCH_OUT=$(CURDIR)/BENCH_$(DATE)_wide.json $(GO) test ./internal/atpg/ -run TestBenchWideFaultSimJSON -count=1 -v

# ATPG pipeline benchmark: incremental event-driven PODEM + batched fault
# dropping vs the preserved legacy baseline on s1423/s5378, plus the
# Workers=1 vs Workers=4 bit-identity gate (acceptance: podem phase >= 5x
# on s1423; report lands in BENCH_<date>_atpg.json).
bench-atpg:
	ATPG_BENCH_OUT=$(CURDIR)/BENCH_$(DATE)_atpg.json $(GO) test ./internal/atpg/ -run TestBenchATPGJSON -count=1 -v
