package scanpower_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/leakage"
)

const s27Source = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// Parse a netlist, map it to the library, and inspect its size.
func ExamplePrepare() {
	c, err := scanpower.ParseBench(s27Source, "s27")
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := scanpower.Prepare(c)
	if err != nil {
		log.Fatal(err)
	}
	st := mapped.ComputeStats()
	fmt.Printf("%d PIs, %d FFs, library-only gates: %d\n", st.PIs, st.FFs, st.Gates)
	// Output:
	// 4 PIs, 3 FFs, library-only gates: 13
}

// The calibrated leakage model reproduces the paper's Figure 2 exactly.
func ExampleBenchmark_figure2() {
	m := leakage.Default()
	f := m.Figure2()
	fmt.Printf("NAND2 leakage (nA): 00=%.0f 01=%.0f 10=%.0f 11=%.0f\n",
		f[0], f[1], f[2], f[3])
	// Output:
	// NAND2 leakage (nA): 00=78 01=73 10=264 11=408
}

// Build the proposed structure on a Table I benchmark and look at the
// flow's decisions.
func ExampleBenchmark() {
	c, err := scanpower.Benchmark("s344")
	if err != nil {
		log.Fatal(err)
	}
	sol, err := core.Build(c, scanpower.DefaultConfig().Proposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("muxed %d of %d scan cells; critical path preserved: %v\n",
		sol.Stats.MuxCount, c.NumFFs(), sol.Stats.CriticalDelay > 0)
	// Output:
	// muxed 10 of 15 scan cells; critical path preserved: true
}
